"""Unit tests for explanation construction (captioned visualizations, paper §3.7)."""

from __future__ import annotations

import json

import pytest

from repro.core import FedexConfig, FedexExplainer
from repro.dataframe import Comparison
from repro.operators import ExploratoryStep, Filter, GroupBy
from repro.viz import BarChartWithReference, SideBySideBarChart


@pytest.fixture
def filter_report(spotify_small):
    step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
    return step, FedexExplainer(FedexConfig(seed=0)).explain(step)


@pytest.fixture
def groupby_report(spotify_small):
    operation = GroupBy("year", {"loudness": ["mean"], "danceability": ["mean"]},
                        pre_filter=Comparison("year", ">=", 1990))
    step = ExploratoryStep([spotify_small], operation)
    return step, FedexExplainer(FedexConfig(seed=0)).explain(step)


class TestExceptionalityExplanation:
    def test_chart_is_side_by_side(self, filter_report):
        _, report = filter_report
        assert report.explanations
        explanation = report.explanations[0]
        assert isinstance(explanation.chart, SideBySideBarChart)

    def test_highlighted_category_is_the_row_set(self, filter_report):
        _, report = filter_report
        explanation = report.explanations[0]
        assert explanation.chart.highlighted_category == explanation.row_set_label

    def test_before_frequencies_sum_to_at_most_100(self, filter_report):
        _, report = filter_report
        chart = report.explanations[0].chart
        assert sum(chart.before) <= 100.0 + 1e-6

    def test_caption_follows_template(self, filter_report):
        _, report = filter_report
        caption = report.explanations[0].caption
        assert caption.startswith("See that the column")
        assert "frequent" in caption

    def test_render_text_contains_caption_and_chart(self, filter_report):
        _, report = filter_report
        text = report.explanations[0].render_text()
        assert "Explanation:" in text
        assert "Before" in text

    def test_to_dict_is_json_serialisable(self, filter_report):
        _, report = filter_report
        payload = json.dumps(report.explanations[0].to_dict())
        assert "interestingness" in payload


class TestDiversityExplanation:
    def test_chart_is_bar_with_reference(self, groupby_report):
        _, report = groupby_report
        assert report.explanations
        explanation = report.explanations[0]
        assert isinstance(explanation.chart, BarChartWithReference)

    def test_reference_line_is_output_mean(self, groupby_report):
        step, report = groupby_report
        explanation = report.explanations[0]
        column = step.output[explanation.attribute].to_float()
        assert explanation.chart.reference_value == pytest.approx(column.mean(), rel=1e-6)

    def test_caption_mentions_standard_deviations(self, groupby_report):
        _, report = groupby_report
        assert "standard deviations" in report.explanations[0].caption

    def test_chart_has_no_empty_categories(self, groupby_report):
        _, report = groupby_report
        chart = report.explanations[0].chart
        non_highlight_values = [
            value for index, value in enumerate(chart.values) if index != chart.highlight_index
        ]
        assert all(value == value for value in non_highlight_values)

    def test_explanation_properties(self, groupby_report):
        _, report = groupby_report
        explanation = report.explanations[0]
        assert explanation.interestingness == explanation.candidate.interestingness
        assert explanation.standardized_contribution == \
            explanation.candidate.standardized_contribution
