"""Unit tests for the contribution function (paper §3.3, Definition 3.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ContributionCalculator,
    DiversityMeasure,
    ExceptionalityMeasure,
    FrequencyPartitioner,
    RowSet,
    contribution_of,
)
from repro.dataframe import Comparison, DataFrame
from repro.operators import ExploratoryStep, Filter, GroupBy


def _row_set(frame: DataFrame, attribute: str, value) -> RowSet:
    indices = np.flatnonzero(np.asarray([v == value for v in frame[attribute].tolist()]))
    return RowSet(str(value), indices, attribute, attribute, "frequency", values=(value,))


class TestDefinition:
    def test_contribution_is_baseline_minus_reduced(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        measure = ExceptionalityMeasure()
        calculator = ContributionCalculator(step, measure)
        row_set = _row_set(tiny_frame, "decade", "2010s")

        baseline = measure.score_step(step, "decade")
        reduced_input = tiny_frame.remove_rows(row_set.indices)
        reduced_step = ExploratoryStep([reduced_input], step.operation)
        reduced = measure.score_step(reduced_step, "decade")

        assert calculator.contribution(row_set, "decade") == pytest.approx(baseline - reduced)

    def test_rows_driving_the_deviation_contribute_positively(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        calculator = ContributionCalculator(step, ExceptionalityMeasure())
        contribution = calculator.contribution(_row_set(tiny_frame, "decade", "2010s"), "decade")
        assert contribution > 0

    def test_groupby_contribution_can_be_negative(self, grouped_frame):
        """The paper's §3.3 example: removing (x, 2) makes the result *more* diverse."""
        step = ExploratoryStep([grouped_frame], GroupBy("label", {"value": ["sum"]}))
        calculator = ContributionCalculator(step, DiversityMeasure())
        row_set = RowSet("(x,2)", np.asarray([1]), "label", "label", "frequency")
        assert calculator.contribution(row_set, "sum_value") < 0

    def test_groupby_contribution_can_be_positive(self):
        """The paper's second §3.3 example: removing one (x, 1) removes all diversity."""
        frame = DataFrame({
            "label": np.asarray(["x", "x", "y"], dtype=object),
            "value": np.asarray([1.0, 1.0, 1.0]),
        })
        step = ExploratoryStep([frame], GroupBy("label", {"value": ["sum"]}))
        calculator = ContributionCalculator(step, DiversityMeasure())
        row_set = RowSet("(x,1)", np.asarray([1]), "label", "label", "frequency")
        assert calculator.contribution(row_set, "sum_value") > 0

    def test_one_off_helper_matches_calculator(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        measure = ExceptionalityMeasure()
        row_set = _row_set(tiny_frame, "decade", "1990s")
        assert contribution_of(step, row_set, "decade", measure) == pytest.approx(
            ContributionCalculator(step, measure).contribution(row_set, "decade")
        )


class TestCalculator:
    def test_baseline_is_cached(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        calculator = ContributionCalculator(step, ExceptionalityMeasure())
        assert calculator.baseline("decade") == calculator.baseline("decade")

    def test_explicit_baseline_respected(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        calculator = ContributionCalculator(step, ExceptionalityMeasure(),
                                            baseline_scores={"decade": 0.9})
        assert calculator.baseline("decade") == 0.9

    def test_partition_contributions_align_with_sets(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        calculator = ContributionCalculator(step, ExceptionalityMeasure())
        partition = FrequencyPartitioner().partition(tiny_frame, "decade", 3)
        contributions = calculator.partition_contributions(partition, "decade")
        assert len(contributions) == len(partition.sets)

    def test_standardized_contributions_are_z_scores(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        calculator = ContributionCalculator(step, ExceptionalityMeasure())
        partition = FrequencyPartitioner().partition(tiny_frame, "decade", 3)
        standardized = calculator.standardized_contributions(partition, "decade")
        assert np.mean(standardized) == pytest.approx(0.0, abs=1e-9)

    def test_reduced_step_is_cached_across_attributes(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        calculator = ContributionCalculator(step, ExceptionalityMeasure(), backend="exact")
        row_set = _row_set(tiny_frame, "decade", "2010s")
        calculator.contribution(row_set, "decade")
        calculator.contribution(row_set, "year")
        assert len(calculator.backend._reduced_cache) == 1

    def test_join_contribution_removes_rows_from_the_right_input(self):
        products = DataFrame({
            "item": np.asarray([1.0, 2.0, 3.0]),
            "vendor": np.asarray(["a", "a", "b"], dtype=object),
        })
        sales = DataFrame({
            "item": np.asarray([1.0, 1.0, 2.0, 3.0]),
            "total": np.asarray([5.0, 6.0, 7.0, 8.0]),
        })
        from repro.operators import Join

        step = ExploratoryStep([products, sales], Join("item"))
        calculator = ContributionCalculator(step, ExceptionalityMeasure())
        row_set = RowSet("item=1 sales", np.asarray([0, 1]), "item", "item", "frequency",
                         input_index=1)
        contribution = calculator.contribution(row_set, "vendor")
        assert isinstance(contribution, float)
