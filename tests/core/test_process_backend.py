"""Adversarial test tier of the process-pool contribution backend.

The contract under test is the exact-rerun oracle extended across process
boundaries: whatever the worker count, however inputs travel (descriptor,
spill, serial fallback), and *even when workers are killed mid-grid*, the
results must be identical to the serial incremental backend — grid sharding
may move execution between processes, never change a float.

Covers, per the PR's test-tier brief:

* descriptor round-trips (frame → descriptor → worker frame) preserving
  fingerprints, values, kinds — including hypothesis property tests;
* hypothesis determinism at 1/2/4 process workers;
* worker-crash injection: a SIGKILLed child must yield results identical to
  a never-crashed run, and the shared pool must recover afterwards;
* spill-threshold boundary cases (empty frame, single row, all-categorical);
* zero full-column re-hashes inside workers for store-backed frames;
* service/session routing of stored datasets across the process pool.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ContributionCalculator,
    DiversityMeasure,
    ExceptionalityMeasure,
    FedexConfig,
    FedexExplainer,
    FrequencyPartitioner,
    NumericBinningPartitioner,
    ProcessBackend,
    available_backends,
)
from repro.core.backends.base import iter_shard_batches, resolve_shard_batch
from repro.core.backends.process import (
    PROCESS_STATS,
    _probe_descriptor,
    frame_nbytes,
    process_pool,
    spill_descriptor,
)
from repro.dataframe import Column, Comparison, DataFrame
from repro.errors import ExplanationError, StorageError
from repro.operators import ExploratoryStep, Filter, GroupBy, Join, Union
from repro.service import ExplanationService
from repro.session import ExplanationSession
from repro.storage import DatasetStore
from repro.storage.reader import clear_shared_datasets, frame_from_descriptor


WORKERS = 2


def _scores(report):
    return {
        c.key(): (c.contribution, c.standardized_contribution)
        for c in report.all_candidates
    }


def _assert_reports_match(reference, other, tolerance: float = 1e-9) -> None:
    assert reference.skyline_keys() == other.skyline_keys()
    ref, oth = _scores(reference), _scores(other)
    assert set(ref) == set(oth)
    for key, (raw, std) in ref.items():
        raw_o, std_o = oth[key]
        assert raw == pytest.approx(raw_o, abs=tolerance)
        assert std == pytest.approx(std_o, abs=tolerance)


def _grid_for(frame):
    partitions = [
        FrequencyPartitioner().partition(frame, "decade", 5),
        NumericBinningPartitioner().partition(frame, "popularity", 5),
    ]
    return [(partition, partition.source_attribute) for partition in partitions]


def _wide_grid(frame, n=7):
    """A grid of ``n`` distinct pairs (the shard-batching tests need width)."""
    partitions = [
        FrequencyPartitioner().partition(frame, "decade", 2 + index % 5)
        for index in range(n)
    ]
    return [(partition, partition.source_attribute) for partition in partitions]


@pytest.fixture
def filter_step(spotify_small):
    return ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))


@pytest.fixture(scope="module")
def stored_spotify(tmp_path_factory):
    """A DatasetStore-backed spotify frame (module-scoped; read-only)."""
    from repro.datasets import load_spotify

    store = DatasetStore(tmp_path_factory.mktemp("process-store"))
    store.put("spotify", load_spotify(n_rows=4_000, seed=7))
    return store


# ----------------------------------------------------------------- descriptors
class TestFrameDescriptors:
    def test_store_backed_frame_has_descriptor(self, stored_spotify):
        frame = stored_spotify.open("spotify")
        descriptor = frame.descriptor()
        assert descriptor is not None
        assert descriptor.columns == tuple(frame.column_names)
        assert descriptor.fingerprint == stored_spotify.dataset("spotify").fingerprint

    def test_in_memory_frame_has_no_descriptor(self, tiny_frame):
        assert tiny_frame.descriptor() is None

    def test_derived_frame_has_no_descriptor(self, stored_spotify):
        frame = stored_spotify.open("spotify")
        assert frame.filter(Comparison("popularity", ">", 65)).descriptor() is None
        assert frame.select(["year", "decade"]).descriptor() is None

    def test_roundtrip_shares_buffers_and_fingerprints(self, stored_spotify):
        frame = stored_spotify.open("spotify")
        descriptor = frame.descriptor()
        resolved = DataFrame.from_descriptor(descriptor)
        assert resolved.column_names == frame.column_names
        assert resolved.fingerprint() == frame.fingerprint()
        for name in frame.column_names:
            assert resolved[name].fingerprint() == frame[name].fingerprint()
        # Every resolution in one process shares one Dataset handle — the
        # same column objects, so structure caches accumulate once.
        again = DataFrame.from_descriptor(descriptor)
        for name in frame.column_names:
            assert again[name] is resolved[name]

    def test_column_subset_descriptor(self, stored_spotify):
        dataset = stored_spotify.dataset("spotify")
        descriptor = dataset.descriptor(("year", "popularity"))
        resolved = frame_from_descriptor(descriptor)
        assert resolved.column_names == ["year", "popularity"]
        assert resolved["year"].fingerprint() == dataset.column("year").fingerprint()

    def test_unknown_column_rejected(self, stored_spotify):
        with pytest.raises(StorageError, match="no column"):
            stored_spotify.dataset("spotify").descriptor(("nope",))

    def test_rewritten_dataset_detected(self, tmp_path):
        store = DatasetStore(tmp_path / "store")
        store.put("t", DataFrame({"x": np.asarray([1.0, 2.0, 3.0])}))
        descriptor = store.open("t").descriptor()
        store.put("t", DataFrame({"x": np.asarray([9.0, 8.0, 7.0])}))
        # A fresh process (simulated by dropping the shared handles) must
        # refuse to resolve the stale descriptor against the new content.
        clear_shared_datasets()
        with pytest.raises(StorageError, match="rewritten"):
            frame_from_descriptor(descriptor)

    def test_rewrite_does_not_poison_fresh_descriptors(self, tmp_path):
        """A cached pre-rewrite handle is evicted, not served, for the new
        descriptor — one rewrite must not force every later resolution of
        that path into the mismatch error for the life of the process."""
        store = DatasetStore(tmp_path / "store")
        store.put("t", DataFrame({"x": np.asarray([1.0, 2.0, 3.0])}))
        frame_from_descriptor(store.open("t").descriptor())  # cache the v1 handle
        rewritten = DataFrame({"x": np.asarray([9.0, 8.0, 7.0])})
        store.put("t", rewritten)
        resolved = frame_from_descriptor(store.open("t").descriptor())
        assert resolved.fingerprint() == rewritten.fingerprint()

    @settings(max_examples=25, deadline=None)
    @given(
        numbers=st.lists(
            st.floats(allow_nan=True, allow_infinity=False, width=64),
            min_size=0, max_size=20,
        ),
        labels=st.lists(st.sampled_from(["a", "b", "", "é", None]),
                        min_size=0, max_size=20),
    )
    def test_descriptor_roundtrip_preserves_fingerprints(self, tmp_path_factory,
                                                         numbers, labels):
        """Property: frame → store → descriptor → frame preserves content."""
        n = min(len(numbers), len(labels))
        frame = DataFrame({
            "x": np.asarray(numbers[:n], dtype=float),
            "g": np.asarray(labels[:n], dtype=object),
        })
        store = DatasetStore(tmp_path_factory.mktemp("prop-store"))
        store.put("t", frame)
        resolved = frame_from_descriptor(store.open("t").descriptor())
        assert resolved.fingerprint() == frame.fingerprint()
        for name in frame.column_names:
            assert resolved[name].kind == frame[name].kind
            assert resolved[name].fingerprint() == frame[name].fingerprint()


# ----------------------------------------------------------------------- spill
class TestSpill:
    @pytest.mark.parametrize("columns", [
        # empty frame
        {"x": np.asarray([], dtype=float), "g": np.asarray([], dtype=object)},
        # single row
        {"x": np.asarray([1.5]), "g": np.asarray(["only"], dtype=object)},
        # all-categorical
        {"g": np.asarray(["a", "b", None, "a"], dtype=object),
         "h": np.asarray(["x", "", "y", "x"], dtype=object)},
    ], ids=["empty", "single-row", "all-categorical"])
    def test_boundary_frames_spill_and_resolve(self, columns):
        frame = DataFrame(columns)
        resolved = frame_from_descriptor(spill_descriptor(frame))
        assert resolved.num_rows == frame.num_rows
        assert resolved.fingerprint() == frame.fingerprint()
        for name in frame.column_names:
            assert resolved[name].kind == frame[name].kind
            if frame[name].is_numeric:
                assert resolved[name].tolist() == pytest.approx(
                    frame[name].tolist(), nan_ok=True)
            else:
                assert resolved[name].tolist() == frame[name].tolist()

    def test_spill_is_content_addressed(self):
        frame = DataFrame({"x": np.asarray([1.0, 2.0, 3.0])})
        twin = DataFrame({"x": np.asarray([1.0, 2.0, 3.0])})
        assert spill_descriptor(frame) == spill_descriptor(twin)

    def test_spill_store_evicts_beyond_budget(self, monkeypatch):
        """The spill store is LRU-bounded by bytes; evicted frames re-spill."""
        import pathlib

        import repro.core.backends.process as process_module

        monkeypatch.setattr(process_module, "_SPILL_BUDGET_BYTES", 1)
        frames = [
            DataFrame({"x": np.arange(50, dtype=float) + offset}) for offset in range(3)
        ]
        descriptors = [spill_descriptor(frame) for frame in frames]
        # Budget of 1 byte keeps only the newest dataset on disk.
        assert not pathlib.Path(descriptors[0].path).exists()
        assert pathlib.Path(descriptors[-1].path).exists()
        # An evicted frame simply spills again and resolves to equal content.
        again = spill_descriptor(frames[0])
        assert frame_from_descriptor(again).fingerprint() == frames[0].fingerprint()

    def test_frame_nbytes_estimates(self):
        numeric = DataFrame({"x": np.zeros(100, dtype=np.float64)})
        assert frame_nbytes(numeric) == 800
        categorical = DataFrame({"g": np.asarray(["a"] * 10, dtype=object)})
        assert frame_nbytes(categorical) > 0

    def test_below_threshold_stays_serial(self, filter_step):
        measure = ExceptionalityMeasure()
        backend = ProcessBackend(filter_step, measure, workers=WORKERS)  # default 4 MiB
        calculator = ContributionCalculator(filter_step, measure, backend=backend)
        grid = _grid_for(filter_step.primary_input)
        calculator.prefetch(grid)
        assert backend.shards_submitted == 0
        assert "below" in backend.fallback_reason
        serial = ContributionCalculator(filter_step, measure, backend="incremental")
        for partition, attribute in grid:
            assert calculator.partition_contributions(partition, attribute) == \
                serial.partition_contributions(partition, attribute)

    def test_custom_measure_stays_serial(self, filter_step):
        from repro.core import FunctionMeasure

        measure = FunctionMeasure("custom", lambda inputs, step, output, attr: 1.0)
        backend = ProcessBackend(filter_step, measure, workers=WORKERS, spill_bytes=0)
        backend.prefetch(_grid_for(filter_step.primary_input), {"decade": 1.0,
                                                                "popularity": 1.0})
        assert backend.shards_submitted == 0
        assert "builtin" in backend.fallback_reason


# ------------------------------------------------------------------ sharding
class TestProcessSharding:
    def test_registered_backend(self):
        assert available_backends()["process"] is ProcessBackend
        with pytest.raises(ExplanationError):
            FedexConfig(spill_bytes=-1)
        assert FedexConfig(backend="process", workers=2, spill_bytes=0).spill_bytes == 0

    def test_with_backend_preserves_spill_bytes(self):
        config = FedexConfig(spill_bytes=123)
        assert config.with_backend("process").spill_bytes == 123

    def test_shards_really_cross_processes(self, filter_step):
        import os

        measure = ExceptionalityMeasure()
        backend = ProcessBackend(filter_step, measure, workers=WORKERS, spill_bytes=0)
        calculator = ContributionCalculator(filter_step, measure, backend=backend)
        grid = _grid_for(filter_step.primary_input)
        calculator.prefetch(grid)
        for partition, attribute in grid:
            calculator.partition_contributions(partition, attribute)
        stats = backend.stats()
        assert stats["fallback_reason"] is None
        assert stats["shards_submitted"] == len(grid)
        assert stats["shards_completed"] == len(grid)
        assert stats["serial_retries"] == 0
        # And the pool workers are other processes, not us.
        payload = process_pool(WORKERS).submit(_probe_descriptor,
                                               spill_descriptor(filter_step.primary_input)
                                               ).result()
        assert payload["pid"] != os.getpid()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_serial_incremental(self, workers, spotify_small,
                                        products_and_sales_small):
        products, sales = products_and_sales_small
        steps = [
            ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65))),
            ExploratoryStep([spotify_small], GroupBy(
                "decade", {"loudness": ["mean", "median", "std"]}, include_count=True
            )),
            ExploratoryStep([products, sales], Join("item")),
            ExploratoryStep([
                spotify_small.filter(Comparison("year", "<", 1990)),
                spotify_small.filter(Comparison("year", ">=", 1990)),
            ], Union()),
        ]
        for step in steps:
            serial = FedexExplainer(FedexConfig(backend="incremental")).explain(step)
            process = FedexExplainer(FedexConfig(
                backend="process", workers=workers, spill_bytes=0
            )).explain(step)
            _assert_reports_match(serial, process)

    def test_store_backed_step_fans_out(self, stored_spotify):
        frame = stored_spotify.open("spotify")
        step = ExploratoryStep([frame], Filter(Comparison("popularity", ">", 65)))
        measure = ExceptionalityMeasure()
        backend = ProcessBackend(step, measure, workers=WORKERS)
        calculator = ContributionCalculator(step, measure, backend=backend)
        grid = _grid_for(frame)
        calculator.prefetch(grid)
        results = {
            attribute: calculator.partition_contributions(partition, attribute)
            for partition, attribute in grid
        }
        assert backend.stats()["fallback_reason"] is None  # no spill needed
        assert backend.stats()["shards_completed"] == len(grid)
        serial = ContributionCalculator(step, measure, backend="incremental")
        for partition, attribute in grid:
            assert results[attribute] == serial.partition_contributions(partition, attribute)

    @settings(max_examples=8, deadline=None)
    @given(
        threshold=st.integers(min_value=-5, max_value=60),
        workers=st.sampled_from([1, 2, 4]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_hypothesis_determinism(self, threshold, workers, seed):
        """Property: any filter step, any worker count — serial results."""
        rng = np.random.default_rng(seed)
        n = 60
        frame = DataFrame({
            "v": rng.integers(-10, 50, size=n).astype(float),
            "g": np.asarray([f"g{i}" for i in rng.integers(0, 5, size=n)], dtype=object),
            "w": rng.normal(size=n),
        })
        step = ExploratoryStep([frame], Filter(Comparison("v", ">", threshold)))
        serial = FedexExplainer(FedexConfig(backend="incremental")).explain(step)
        process = FedexExplainer(FedexConfig(
            backend="process", workers=workers, spill_bytes=0
        )).explain(step)
        _assert_reports_match(serial, process)


# ------------------------------------------------------------- crash recovery
class TestCrashRecovery:
    def test_killed_worker_yields_identical_results(self, filter_step):
        measure = ExceptionalityMeasure()
        grid = _grid_for(filter_step.primary_input)

        healthy = ProcessBackend(filter_step, measure, workers=WORKERS, spill_bytes=0)
        calculator = ContributionCalculator(filter_step, measure, backend=healthy)
        calculator.prefetch(grid)
        reference = {
            attribute: calculator.partition_contributions(partition, attribute)
            for partition, attribute in grid
        }
        assert healthy.stats()["serial_retries"] == 0

        crashing = ProcessBackend(filter_step, measure, workers=WORKERS,
                                  spill_bytes=0, crash_shards=1)
        crashed = ContributionCalculator(filter_step, measure, backend=crashing)
        crashed.prefetch(grid)
        results = {
            attribute: crashed.partition_contributions(partition, attribute)
            for partition, attribute in grid
        }
        # Bit-identical: the serial retry reruns the same incremental
        # derivations the lost worker would have run.
        assert results == reference
        stats = crashing.stats()
        assert stats["serial_retries"] >= 1
        assert stats["fallback_reason"] is not None

    def test_pool_recovers_after_crash(self, filter_step):
        measure = ExceptionalityMeasure()
        grid = _grid_for(filter_step.primary_input)
        backend = ProcessBackend(filter_step, measure, workers=WORKERS, spill_bytes=0)
        calculator = ContributionCalculator(filter_step, measure, backend=backend)
        calculator.prefetch(grid)
        for partition, attribute in grid:
            calculator.partition_contributions(partition, attribute)
        stats = backend.stats()
        assert stats["serial_retries"] == 0
        assert stats["shards_completed"] == len(grid)

    def test_crashed_explain_end_to_end_still_correct(self, filter_step, monkeypatch):
        """A crash inside a full explain() degrades gracefully, never wrongly."""
        import repro.core.backends.base as base_module

        class CrashingBackend(ProcessBackend):
            def __init__(self, *args, **kwargs):
                kwargs.setdefault("crash_shards", 1)
                super().__init__(*args, **kwargs)

        registry = dict(available_backends())
        registry["process"] = CrashingBackend
        monkeypatch.setattr(base_module, "available_backends", lambda: registry)
        serial = FedexExplainer(FedexConfig(backend="incremental")).explain(filter_step)
        crashed = FedexExplainer(FedexConfig(
            backend="process", workers=WORKERS, spill_bytes=0
        )).explain(filter_step)
        _assert_reports_match(serial, crashed)


# ---------------------------------------------------------------- zero rehash
class TestWorkerFingerprints:
    def test_workers_never_rehash_store_backed_frames(self, stored_spotify):
        """Descriptors resolve through persisted fingerprints: zero full hashes."""
        frame = stored_spotify.open("spotify")
        descriptor = frame.descriptor()
        payload = process_pool(WORKERS).submit(_probe_descriptor, descriptor).result()
        assert payload["full_hashes"] == 0
        assert payload["persisted_hits"] > 0
        assert payload["frame_fingerprint"] == frame.fingerprint()
        parent_columns = {name: frame[name].fingerprint() for name in frame.column_names}
        assert payload["column_fingerprints"] == parent_columns


# -------------------------------------------------------------------- routing
class TestServiceRouting:
    def test_session_routes_process_backend(self, stored_spotify):
        config = FedexConfig(backend="process", workers=WORKERS)
        session = ExplanationSession(config=config)
        frame = session.open(stored_spotify.open("spotify"))
        report = frame.filter(Comparison("popularity", ">", 65)).explain()
        reference = FedexExplainer(FedexConfig()).explain(
            ExploratoryStep([stored_spotify.open("spotify")],
                            Filter(Comparison("popularity", ">", 65)))
        )
        _assert_reports_match(reference, report)

    def test_service_serves_stored_dataset_across_processes(self, stored_spotify):
        config = FedexConfig(backend="process", workers=WORKERS)
        with ExplanationService(config=config,
                                dataset_store=stored_spotify) as service:
            reports = []
            for tenant in ("alice", "bob"):
                wrapped = service.open_dataset(tenant, "spotify")
                reports.append(wrapped.filter(Comparison("popularity", ">", 65)).explain())
            reference = FedexExplainer(FedexConfig()).explain(
                ExploratoryStep([stored_spotify.open("spotify")],
                                Filter(Comparison("popularity", ">", 65)))
            )
            for report in reports:
                _assert_reports_match(reference, report)


# ------------------------------------------------------------ shard batching
class TestShardBatching:
    """Batched dispatch: many grid pairs per submitted job, identical results.

    The contract has three legs: the batch-size policy (explicit >
    ``REPRO_SHARD_BATCH`` > automatic), the amortization accounting
    (``batches_submitted`` shrinks while ``shards_submitted`` still counts
    pairs), and — above all — bit-identity: batching may change how many
    futures exist, never a value, even when a worker is killed mid-batch.
    """

    def test_resolve_shard_batch_policy(self):
        # Automatic: ceil(grid / (workers * oversubscription)), at least 1.
        assert resolve_shard_batch(None, 100, 4) == math.ceil(100 / 16)
        assert resolve_shard_batch(None, 3, 4) == 1
        assert resolve_shard_batch(None, 0, 4) == 1
        # Explicit values pass through (clamped to >= 1).
        assert resolve_shard_batch(7, 100, 4) == 7
        assert resolve_shard_batch(0, 100, 4) == 1

    def test_env_override_and_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_BATCH", "5")
        assert resolve_shard_batch(None, 100, 4) == 5
        # An explicit hint (config or call site) beats the environment.
        assert resolve_shard_batch(2, 100, 4) == 2
        monkeypatch.setenv("REPRO_SHARD_BATCH", "many")
        with pytest.raises(ExplanationError, match="REPRO_SHARD_BATCH"):
            resolve_shard_batch(None, 100, 4)

    def test_iter_shard_batches_covers_grid_in_order(self):
        grid = list(range(10))
        batches = list(iter_shard_batches(grid, 4))
        assert batches == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        assert list(iter_shard_batches(grid, 100)) == [grid]
        assert list(iter_shard_batches([], 4)) == []

    def test_batches_amortize_submissions(self, filter_step):
        measure = ExceptionalityMeasure()
        grid = _wide_grid(filter_step.primary_input, n=7)
        backend = ProcessBackend(filter_step, measure, workers=WORKERS,
                                 spill_bytes=0, shard_batch=3)
        calculator = ContributionCalculator(filter_step, measure, backend=backend)
        calculator.prefetch(grid)
        assert backend.batches_submitted == math.ceil(len(grid) / 3)
        assert backend.shards_submitted == len(grid)
        serial = ContributionCalculator(filter_step, measure, backend="incremental")
        for partition, attribute in grid:
            assert calculator.partition_contributions(partition, attribute) == \
                serial.partition_contributions(partition, attribute)
        stats = backend.stats()
        assert stats["fallback_reason"] is None
        assert stats["shards_completed"] == len(grid)

    def test_env_batch_applies_to_backend(self, filter_step, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_BATCH", "2")
        measure = ExceptionalityMeasure()
        grid = _wide_grid(filter_step.primary_input, n=7)
        from_env = ProcessBackend(filter_step, measure, workers=WORKERS,
                                  spill_bytes=0)
        ContributionCalculator(filter_step, measure, backend=from_env).prefetch(grid)
        assert from_env.batches_submitted == math.ceil(len(grid) / 2)
        explicit = ProcessBackend(filter_step, measure, workers=WORKERS,
                                  spill_bytes=0, shard_batch=len(grid))
        ContributionCalculator(filter_step, measure, backend=explicit).prefetch(grid)
        assert explicit.batches_submitted == 1

    @pytest.mark.parametrize("shard_batch", [1, 3, 7],
                             ids=["batch1", "batch3", "whole-grid"])
    def test_crash_mid_batch_serial_retry_bit_identical(self, filter_step,
                                                        shard_batch):
        """A SIGKILLed worker mid-batch never changes a float, at any size."""
        measure = ExceptionalityMeasure()
        grid = _wide_grid(filter_step.primary_input, n=7)

        healthy = ProcessBackend(filter_step, measure, workers=WORKERS,
                                 spill_bytes=0, shard_batch=shard_batch)
        calculator = ContributionCalculator(filter_step, measure, backend=healthy)
        calculator.prefetch(grid)
        reference = [calculator.partition_contributions(partition, attribute)
                     for partition, attribute in grid]
        assert healthy.stats()["serial_retries"] == 0

        crashing = ProcessBackend(filter_step, measure, workers=WORKERS,
                                  spill_bytes=0, shard_batch=shard_batch,
                                  crash_shards=1)
        crashed = ContributionCalculator(filter_step, measure, backend=crashing)
        crashed.prefetch(grid)
        results = [crashed.partition_contributions(partition, attribute)
                   for partition, attribute in grid]
        assert results == reference
        stats = crashing.stats()
        assert stats["serial_retries"] >= 1
        assert stats["fallback_reason"] is not None

    @settings(max_examples=6, deadline=None)
    @given(
        shard_batch=st.one_of(st.none(), st.integers(min_value=1, max_value=9)),
        threshold=st.integers(min_value=-5, max_value=60),
    )
    def test_hypothesis_any_batch_size_is_identical(self, shard_batch, threshold):
        """Property: any shard_batch — same skylines, same scores."""
        rng = np.random.default_rng(threshold + 11)
        n = 60
        frame = DataFrame({
            "v": rng.integers(-10, 50, size=n).astype(float),
            "g": np.asarray([f"g{i}" for i in rng.integers(0, 5, size=n)],
                            dtype=object),
            "w": rng.normal(size=n),
        })
        step = ExploratoryStep([frame], Filter(Comparison("v", ">", threshold)))
        serial = FedexExplainer(FedexConfig(backend="incremental")).explain(step)
        batched = FedexExplainer(FedexConfig(
            backend="process", workers=WORKERS, spill_bytes=0,
            shard_batch=shard_batch,
        )).explain(step)
        _assert_reports_match(serial, batched)


# ---------------------------------------------------- worker structure cache
class TestWorkerStructureCache:
    """Cross-step structure reuse inside the worker processes.

    The worker-global structure cache is keyed by content fingerprints (the
    SessionCache key layouts), so it survives backend tokens: a session's
    next step grouping the same stored frame by the same keys must reuse the
    structure its previous step's workers derived — and a rewritten dataset
    (new fingerprint) must never be served a stale structure.
    """

    def _run_step(self, step, attribute, partitions, shard_batch=1):
        measure = DiversityMeasure()
        backend = ProcessBackend(step, measure, workers=WORKERS,
                                 shard_batch=shard_batch)
        calculator = ContributionCalculator(step, measure, backend=backend)
        grid = [(partition, attribute) for partition in partitions]
        calculator.prefetch(grid)
        results = [calculator.partition_contributions(partition, attribute)
                   for partition, _ in grid]
        serial = ContributionCalculator(step, measure, backend="incremental")
        assert results == [serial.partition_contributions(partition, attribute)
                           for partition, _ in grid]
        return backend

    def test_structures_reused_across_steps(self, stored_spotify):
        frame = stored_spotify.open("spotify")
        partitions = [FrequencyPartitioner().partition(frame, "decade", 2 + i % 5)
                      for i in range(7)]
        first = ExploratoryStep([frame], GroupBy("decade", {"popularity": ["mean"]}))
        second = ExploratoryStep([frame], GroupBy("decade", {"loudness": ["mean"]}))
        PROCESS_STATS.reset()
        self._run_step(first, "mean_popularity", partitions)
        backend = self._run_step(second, "mean_loudness", partitions)
        # Both steps group the same stored frame by the same keys, so the
        # second step's workers reuse the group structure the first step's
        # workers derived — across backend tokens, inside the same pool.
        assert PROCESS_STATS.structure_hits > 0
        assert backend.stats()["fallback_reason"] is None
        # shard_batch=1 degenerates to one pair per batch — the accounting
        # must agree (amortization is covered by TestShardBatching).
        assert PROCESS_STATS.batches_submitted == PROCESS_STATS.shards_submitted

    def test_rewritten_dataset_builds_fresh_structures(self, tmp_path):
        """A rewrite changes the fingerprint, so no stale structure is served."""
        store = DatasetStore(tmp_path / "store")

        def make_frame(shift):
            n = 400
            return DataFrame({
                "g": np.asarray([f"g{i % 6}" for i in range(n)], dtype=object),
                "v": np.arange(n, dtype=float) + shift,
            })

        store.put("t", make_frame(0.0))
        frame = store.open("t")
        partitions = [FrequencyPartitioner().partition(frame, "g", 2 + i % 4)
                      for i in range(4)]
        step = ExploratoryStep([frame], GroupBy("g", {"v": ["mean"]}))
        # Whole grid in one batch: one worker, so within-run reuse cannot
        # masquerade as (absent) stale reuse in the second pass below.
        self._run_step(step, "mean_v", partitions, shard_batch=len(partitions))

        store.put("t", make_frame(1000.0))
        clear_shared_datasets()
        rewritten = DatasetStore(store.root).open("t")
        partitions = [FrequencyPartitioner().partition(rewritten, "g", 2 + i % 4)
                      for i in range(4)]
        step = ExploratoryStep([rewritten], GroupBy("g", {"v": ["mean"]}))
        PROCESS_STATS.reset()
        self._run_step(step, "mean_v", partitions, shard_batch=len(partitions))
        assert PROCESS_STATS.structure_hits == 0
        assert PROCESS_STATS.structure_misses > 0


# ------------------------------------------------------- trace aggregation
class TestTraceAggregation:
    """Worker-side spans ship home and graft under parent batch spans.

    Workers cannot share the parent's tracer, so each traced batch runs a
    local tracer and returns its span dicts with the batch stats; the
    parent rebuilds the tree (``process.batch`` → ``worker.batch``).  The
    contract: every dispatched batch appears with its worker child, the
    accounted pairs add up to the grid, and a crash mid-grid leaves the
    surviving workers' spans in place next to the serial-retry event.
    """

    def _traced_run(self, filter_step, **backend_kwargs):
        from repro.obs.trace import begin_request, end_request, tracing

        measure = ExceptionalityMeasure()
        grid = _wide_grid(filter_step.primary_input, n=7)
        with tracing(True):
            tracer, token = begin_request()
            try:
                with tracer.span("explain"):
                    backend = ProcessBackend(filter_step, measure,
                                             workers=WORKERS, spill_bytes=0,
                                             **backend_kwargs)
                    calculator = ContributionCalculator(filter_step, measure,
                                                        backend=backend)
                    calculator.prefetch(grid)
                    results = [
                        calculator.partition_contributions(partition, attribute)
                        for partition, attribute in grid
                    ]
            finally:
                trace = end_request(tracer, token)
        return trace, backend, results, grid

    def test_batches_carry_worker_spans(self, filter_step):
        trace, backend, _results, grid = self._traced_run(
            filter_step, shard_batch=2)
        assert backend.stats()["fallback_reason"] is None

        batches = trace.find("process.batch")
        workers = trace.find("worker.batch")
        assert len(batches) == backend.batches_submitted
        assert len(workers) == len(batches)
        batch_ids = {span.span_id for span in batches}
        assert all(span.parent_id in batch_ids for span in workers)
        # Each worker span hangs under the batch that dispatched it, and
        # the accounted pairs cover the grid exactly once on both sides.
        by_parent = {span.parent_id: span for span in workers}
        for batch in batches:
            assert by_parent[batch.span_id].attrs["pairs"] == batch.attrs["pairs"]
        assert sum(span.attrs["pairs"] for span in batches) == len(grid)
        # Worker spans carry the worker's pid — a genuinely foreign process.
        import os

        assert all(span.attrs["pid"] != os.getpid() for span in workers)
        # Batch spans are children of the prefetch-time parent inside explain.
        (prefetch,) = trace.find("process.prefetch")
        assert all(span.parent_id is not None for span in batches)
        assert prefetch.attrs["batches"] == len(batches)

    def test_crash_retried_batch_keeps_surviving_spans(self, filter_step):
        trace, backend, results, grid = self._traced_run(
            filter_step, shard_batch=1, crash_shards=1)
        stats = backend.stats()
        assert stats["serial_retries"] >= 1

        # Every *submitted* batch either comes home with its worker span or
        # is serially retried after the pool broke.  (Batches whose submission
        # lost the race against the breakage never enter the pool at all —
        # they fall back serially with neither, so the grid size is not the
        # right-hand side here.)
        workers = trace.find("worker.batch")
        assert len(workers) == stats["batches_submitted"] - stats["serial_retries"]
        retries = trace.find("process.serial_retry")
        assert retries and sum(span.attrs["count"] for span in retries) >= 1
        assert all(span.is_event for span in retries)

        # And the results still match a healthy run (the existing oracle).
        healthy = ProcessBackend(filter_step, ExceptionalityMeasure(),
                                 workers=WORKERS, spill_bytes=0, shard_batch=1)
        calculator = ContributionCalculator(filter_step, ExceptionalityMeasure(),
                                            backend=healthy)
        calculator.prefetch(grid)
        reference = [calculator.partition_contributions(partition, attribute)
                     for partition, attribute in grid]
        assert results == reference

    def test_untraced_run_ships_no_spans(self, filter_step):
        from repro.obs.trace import tracing

        measure = ExceptionalityMeasure()
        grid = _wide_grid(filter_step.primary_input, n=7)
        with tracing(False):
            backend = ProcessBackend(filter_step, measure, workers=WORKERS,
                                     spill_bytes=0, shard_batch=2)
            calculator = ContributionCalculator(filter_step, measure,
                                                backend=backend)
            calculator.prefetch(grid)
            for partition, attribute in grid:
                calculator.partition_contributions(partition, attribute)
        assert backend.stats()["fallback_reason"] is None
        assert not backend._tracer.enabled


# --------------------------------------------------- worker metrics shipping
class TestWorkerMetricsShipping:
    """Worker registry deltas ride home with batch stats and merge under a
    ``worker`` label, so the parent's scrape endpoint and
    ``PROCESS_STATS.snapshot()`` tell one story."""

    def _run(self, filter_step, **backend_kwargs):
        measure = ExceptionalityMeasure()
        grid = _wide_grid(filter_step.primary_input, n=7)
        backend = ProcessBackend(filter_step, measure, workers=WORKERS,
                                 spill_bytes=0, steal=False, **backend_kwargs)
        calculator = ContributionCalculator(filter_step, measure,
                                            backend=backend)
        calculator.prefetch(grid)
        for partition, attribute in grid:
            calculator.partition_contributions(partition, attribute)
        return backend, grid

    def test_worker_series_land_with_worker_labels(self, filter_step):
        import os

        from repro.obs.metrics import REGISTRY, registry_delta

        before = REGISTRY.dump()
        stats_before = PROCESS_STATS.snapshot()
        backend, grid = self._run(filter_step, shard_batch=2)
        assert backend.stats()["fallback_reason"] is None
        delta = registry_delta(before, REGISTRY.dump())
        stats_delta = PROCESS_STATS.delta(stats_before)
        assert stats_delta["serial_retries"] == 0

        batches = delta["repro_worker_batch_seconds"]
        worker_at = batches["labelnames"].index("worker")
        pids = {key[worker_at] for key in batches["series"]}
        # The label is a genuinely foreign pid, one series per worker used.
        assert pids and str(os.getpid()) not in pids
        assert sum(series["count"] for series in batches["series"].values()) \
            == stats_delta["batches_submitted"]

        # The parent-side dispatch histogram covers the same batches and
        # agrees about which workers served them.
        parent = delta["repro_process_batch_seconds"]
        parent_at = parent["labelnames"].index("worker")
        assert {key[parent_at] for key in parent["series"]} == pids
        assert sum(series["count"] for series in parent["series"].values()) \
            == stats_delta["batches_submitted"]

        # Every grid pair was timed exactly once, inside some worker.
        pairs = delta["repro_worker_pair_seconds"]
        assert sum(series["count"] for series in pairs["series"].values()) \
            == len(grid)

    def test_structure_events_agree_with_process_stats(self, filter_step):
        from repro.obs.metrics import REGISTRY, registry_delta

        before = REGISTRY.dump()
        stats_before = PROCESS_STATS.snapshot()
        backend, _grid = self._run(filter_step, shard_batch=2)
        assert backend.stats()["fallback_reason"] is None
        delta = registry_delta(before, REGISTRY.dump())
        stats_delta = PROCESS_STATS.delta(stats_before)

        events = delta["repro_worker_structure_events_total"]
        at = {name: i for i, name in enumerate(events["labelnames"])}

        def shipped(tier, event):
            return int(sum(
                value for key, value in events["series"].items()
                if key[at["tier"]] == tier and key[at["event"]] == event))

        # The scrape endpoint's counter and the snapshot's integers are two
        # views of the same worker-shipped deltas — they must agree exactly.
        assert shipped("local", "hit") == stats_delta["structure_hits"]
        assert shipped("local", "miss") == stats_delta["structure_misses"]
        assert shipped("shared", "hit") == stats_delta["shared_structure_hits"]
        assert shipped("shared", "store") \
            == stats_delta["shared_structure_stores"]
        assert shipped("local", "hit") + shipped("local", "miss") > 0
