"""Unit tests for the interestingness measures (paper §3.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DiversityMeasure,
    ExceptionalityMeasure,
    FunctionMeasure,
    MeasureRegistry,
    default_registry,
    measure_for_step,
)
from repro.dataframe import Comparison, DataFrame
from repro.errors import MeasureError
from repro.operators import ExploratoryStep, Filter, GroupBy, Join, Union
from repro.stats import coefficient_of_variation, ks_columns


@pytest.fixture
def filter_step(tiny_frame):
    return ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))


@pytest.fixture
def groupby_step(tiny_frame):
    return ExploratoryStep([tiny_frame], GroupBy("decade", {"loudness": ["mean"],
                                                            "popularity": ["mean"]}))


class TestExceptionality:
    def test_equals_ks_of_column_distributions(self, filter_step, tiny_frame):
        measure = ExceptionalityMeasure()
        expected = ks_columns(tiny_frame["decade"], filter_step.output["decade"])
        assert measure.score_step(filter_step, "decade") == pytest.approx(expected)

    def test_filtered_column_is_interesting(self, filter_step):
        measure = ExceptionalityMeasure()
        assert measure.score_step(filter_step, "popularity") > 0.4

    def test_unrelated_identity_filter_scores_zero(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", -1)))
        measure = ExceptionalityMeasure()
        assert measure.score_step(step, "decade") == 0.0

    def test_missing_column_scores_zero(self, filter_step):
        assert ExceptionalityMeasure().score_step(filter_step, "nope") == 0.0

    def test_applicable_columns_are_shared_columns(self, filter_step):
        assert set(ExceptionalityMeasure().applicable_columns(filter_step)) == \
            set(filter_step.output.column_names)

    def test_join_uses_input_holding_the_attribute(self):
        products = DataFrame({
            "item": np.asarray([1.0, 2.0, 3.0, 4.0]),
            "vendor": np.asarray(["a", "a", "b", "c"], dtype=object),
        })
        sales = DataFrame({
            "item": np.asarray([1.0, 1.0, 1.0, 2.0]),
            "total": np.asarray([5.0, 6.0, 7.0, 8.0]),
        })
        step = ExploratoryStep([products, sales], Join("item"))
        measure = ExceptionalityMeasure()
        expected = ks_columns(products["vendor"], step.output["vendor"])
        assert measure.score_step(step, "vendor") == pytest.approx(expected)
        assert measure.score_step(step, "vendor") > 0

    def test_union_takes_max_over_inputs(self, tiny_frame):
        other = tiny_frame.filter(Comparison("popularity", ">", 65))
        step = ExploratoryStep([tiny_frame, other], Union())
        measure = ExceptionalityMeasure()
        individual = [
            ks_columns(tiny_frame["decade"], step.output["decade"]),
            ks_columns(other["decade"], step.output["decade"]),
        ]
        assert measure.score_step(step, "decade") == pytest.approx(max(individual))


class TestDiversity:
    def test_equals_cv_of_aggregated_column(self, groupby_step):
        measure = DiversityMeasure()
        expected = coefficient_of_variation(groupby_step.output["mean_loudness"].to_float())
        assert measure.score_step(groupby_step, "mean_loudness") == pytest.approx(expected)

    def test_non_numeric_column_scores_zero(self, groupby_step):
        assert DiversityMeasure().score_step(groupby_step, "decade") == 0.0

    def test_applicable_columns_are_aggregates_only(self, groupby_step):
        columns = DiversityMeasure().applicable_columns(groupby_step)
        assert set(columns) == {"mean_loudness", "mean_popularity"}

    def test_paper_example_loudness_more_diverse_than_danceability(self):
        frame = DataFrame({
            "year": np.asarray([1991.0, 1992.0, 2013.0, 2014.0]),
            "loudness": np.asarray([-11.0, -10.7, -8.2, -7.8]),
            "danceability": np.asarray([0.555, 0.555, 0.593, 0.586]),
        })
        step = ExploratoryStep([frame], GroupBy("year", {"loudness": ["mean"],
                                                         "danceability": ["mean"]}))
        measure = DiversityMeasure()
        assert measure.score_step(step, "mean_loudness") > \
            measure.score_step(step, "mean_danceability")


class TestRegistry:
    def test_default_registry_contains_both_measures(self):
        registry = default_registry()
        assert "exceptionality" in registry
        assert "diversity" in registry

    def test_duplicate_registration_rejected(self):
        registry = default_registry()
        with pytest.raises(MeasureError):
            registry.register(ExceptionalityMeasure())

    def test_overwrite_allowed_when_requested(self):
        registry = default_registry()
        registry.register(ExceptionalityMeasure(), overwrite=True)
        assert "exceptionality" in registry

    def test_unknown_measure_rejected(self):
        with pytest.raises(MeasureError):
            default_registry().get("nope")

    def test_measure_for_step_uses_operation_default(self, filter_step, groupby_step):
        assert measure_for_step(filter_step).name == "exceptionality"
        assert measure_for_step(groupby_step).name == "diversity"

    def test_measure_for_step_override(self, filter_step):
        assert measure_for_step(filter_step, override="diversity").name == "diversity"

    def test_function_measure(self, groupby_step):
        measure = FunctionMeasure("range", lambda inputs, step, output, attr:
                                  output[attr].max() - output[attr].min(), columns="numeric")
        registry = MeasureRegistry()
        registry.register(measure)
        score = measure.score_step(groupby_step, "mean_popularity")
        assert score > 0
        assert "mean_popularity" in measure.applicable_columns(groupby_step)

    def test_function_measure_explicit_columns(self, groupby_step):
        measure = FunctionMeasure("one", lambda *args: 1.0, columns=["mean_loudness"])
        assert measure.applicable_columns(groupby_step) == ["mean_loudness"]
