"""Unit and property tests for the skyline operator and weighted ranking (paper §3.6)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExplanationCandidate, RowSet, is_dominated, rank_by_weighted_score, skyline
from repro.core.skyline import skyline_pairs


def _candidate(interestingness: float, contribution: float, attribute: str = "a",
               label: str = "r") -> ExplanationCandidate:
    row_set = RowSet(label, np.asarray([0]), attribute, attribute, "frequency")
    return ExplanationCandidate(
        row_set=row_set,
        attribute=attribute,
        interestingness=interestingness,
        contribution=contribution,
        standardized_contribution=contribution,
        measure_name="exceptionality",
        partition_size=3,
    )


class TestSkyline:
    def test_dominated_candidate_removed(self):
        good = _candidate(0.9, 2.0, label="good")
        bad = _candidate(0.5, 1.0, label="bad")
        assert skyline([good, bad]) == [good]

    def test_incomparable_candidates_both_kept(self):
        first = _candidate(0.9, 1.0, label="interesting")
        second = _candidate(0.5, 2.0, label="contributing")
        assert set(c.row_set.label for c in skyline([first, second])) == {"interesting", "contributing"}

    def test_equal_interestingness_keeps_only_best_contribution(self):
        first = _candidate(0.9, 2.0, label="best")
        second = _candidate(0.9, 1.0, label="worse")
        assert skyline([first, second]) == [first]

    def test_fully_tied_candidates_all_kept(self):
        first = _candidate(0.9, 1.0, label="one")
        second = _candidate(0.9, 1.0, label="two")
        assert len(skyline([first, second])) == 2

    def test_empty_input(self):
        assert skyline([]) == []

    def test_is_dominated_matches_paper_definition(self):
        candidates = [_candidate(0.9, 1.0), _candidate(0.5, 2.0), _candidate(0.4, 0.5)]
        assert not is_dominated(candidates[0], candidates)
        assert not is_dominated(candidates[1], candidates)
        assert is_dominated(candidates[2], candidates)

    def test_sweep_matches_pairwise_definition_on_random_data(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            candidates = [
                _candidate(float(rng.integers(0, 5)) / 4, float(rng.integers(0, 5)), label=str(i))
                for i in range(rng.integers(1, 15))
            ]
            expected = {id(c) for c in candidates if not is_dominated(c, candidates)}
            actual = {id(c) for c in skyline(candidates)}
            assert actual == expected


class TestWeightedRanking:
    def test_ranked_by_weighted_score(self):
        first = _candidate(1.0, 0.0, label="interesting")
        second = _candidate(0.0, 2.0, label="contributing")
        ranked = rank_by_weighted_score([first, second], 1.0, 1.0)
        assert ranked[0].row_set.label == "contributing"

    def test_weights_change_the_order(self):
        first = _candidate(1.0, 0.0, label="interesting")
        second = _candidate(0.0, 1.5, label="contributing")
        by_interest = rank_by_weighted_score([first, second], 10.0, 1.0)
        assert by_interest[0].row_set.label == "interesting"

    def test_top_k_truncation(self):
        candidates = [_candidate(0.5, float(i), label=str(i)) for i in range(5)]
        assert len(rank_by_weighted_score(candidates, top_k=2)) == 2

    def test_weighted_score_formula(self):
        candidate = _candidate(0.6, 1.8)
        assert candidate.weighted_score(1.0, 2.0) == pytest.approx((0.6 + 2 * 1.8) / 3)


class TestSkylinePairs:
    def test_simple_case(self):
        points = [(1.0, 1.0), (2.0, 0.5), (0.5, 2.0), (0.4, 0.4)]
        assert skyline_pairs(points) == [0, 1, 2]

    def test_single_point(self):
        assert skyline_pairs([(1.0, 1.0)]) == [0]


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=25))
@settings(max_examples=80, deadline=None)
def test_skyline_pairs_matches_bruteforce(points):
    points = [(float(x), float(y)) for x, y in points]

    def dominated(i):
        return any(
            (points[j][0] >= points[i][0] and points[j][1] >= points[i][1]
             and points[j] != points[i])
            for j in range(len(points))
        )

    expected = sorted(i for i in range(len(points)) if not dominated(i))
    assert skyline_pairs(points) == expected
