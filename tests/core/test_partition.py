"""Unit tests for row partitions (paper §3.5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FrequencyPartitioner,
    ManyToOnePartitioner,
    MappingPartitioner,
    NumericBinningPartitioner,
    RowPartition,
    RowSet,
    build_partitions,
    default_partitioners,
)
from repro.dataframe import DataFrame
from repro.errors import PartitionError


@pytest.fixture
def frame() -> DataFrame:
    years = np.asarray([1991, 1992, 1993, 2001, 2002, 2011, 2012, 2013, 2014, 2015], dtype=float)
    decades = np.asarray([f"{int(y) // 10 * 10}s" for y in years], dtype=object)
    return DataFrame({
        "year": years,
        "decade": decades,
        "value": np.linspace(0, 9, 10),
    })


class TestDefinition:
    def test_row_sets_must_be_disjoint(self):
        first = RowSet("a", np.asarray([0, 1]), "x", "x", "frequency")
        second = RowSet("b", np.asarray([1, 2]), "x", "x", "frequency")
        with pytest.raises(PartitionError):
            RowPartition(sets=[first, second], source_attribute="x", method="frequency")

    def test_all_sets_includes_ignore_set(self):
        first = RowSet("a", np.asarray([0]), "x", "x", "frequency")
        ignore = RowSet("rest", np.asarray([1]), "x", "x", "frequency", is_ignore=True)
        partition = RowPartition(sets=[first], ignore_set=ignore, source_attribute="x",
                                 method="frequency")
        assert len(partition.all_sets()) == 2
        assert partition.covered_rows() == 2


class TestFrequencyPartitioner:
    def test_top_values_become_sets(self, frame):
        partition = FrequencyPartitioner().partition(frame, "decade", n_sets=2)
        labels = {row_set.label for row_set in partition.sets}
        assert labels == {"2010s", "1990s"}

    def test_remaining_rows_go_to_ignore_set(self, frame):
        partition = FrequencyPartitioner().partition(frame, "decade", n_sets=2)
        assert partition.ignore_set is not None
        assert partition.ignore_set.size == 2  # the two 2000s rows

    def test_covers_all_rows(self, frame):
        partition = FrequencyPartitioner().partition(frame, "decade", n_sets=2)
        assert partition.covered_rows() == frame.num_rows

    def test_no_ignore_set_when_all_values_kept(self, frame):
        partition = FrequencyPartitioner().partition(frame, "decade", n_sets=3)
        assert partition.ignore_set is None

    def test_numeric_attribute_supported(self, frame):
        partition = FrequencyPartitioner().partition(frame, "year", n_sets=5)
        assert len(partition) == 5

    def test_single_valued_column_returns_none(self):
        frame = DataFrame({"c": np.asarray(["x", "x"], dtype=object)})
        assert FrequencyPartitioner().partition(frame, "c", 5) is None

    def test_missing_attribute_returns_none(self, frame):
        assert FrequencyPartitioner().partition(frame, "nope", 5) is None


class TestNumericBinningPartitioner:
    def test_equal_frequency_bins(self, frame):
        partition = NumericBinningPartitioner().partition(frame, "value", n_sets=5)
        assert len(partition) == 5
        sizes = [row_set.size for row_set in partition.sets]
        assert max(sizes) - min(sizes) <= 1

    def test_bins_cover_all_rows_without_ignore_set(self, frame):
        partition = NumericBinningPartitioner().partition(frame, "value", n_sets=5)
        assert partition.ignore_set is None
        assert partition.covered_rows() == frame.num_rows

    def test_interval_labels(self, frame):
        partition = NumericBinningPartitioner().partition(frame, "value", n_sets=2)
        assert partition.sets[0].interval is not None
        assert partition.sets[0].label.startswith("[")

    def test_categorical_attribute_returns_none(self, frame):
        assert NumericBinningPartitioner().partition(frame, "decade", 5) is None

    def test_missing_values_in_ignore_set(self):
        frame = DataFrame({"x": np.asarray([1.0, 2.0, 3.0, 4.0, np.nan])})
        partition = NumericBinningPartitioner().partition(frame, "x", 2)
        assert partition.ignore_set is not None
        assert partition.ignore_set.size == 1

    def test_constant_column_returns_none(self):
        frame = DataFrame({"x": np.asarray([2.0, 2.0, 2.0])})
        assert NumericBinningPartitioner().partition(frame, "x", 3) is None

    def test_fewer_distinct_values_than_bins(self):
        frame = DataFrame({"x": np.asarray([1.0, 1.0, 2.0, 2.0])})
        partition = NumericBinningPartitioner().partition(frame, "x", 10)
        assert partition is not None
        assert len(partition) == 2


class TestManyToOnePartitioner:
    def test_finds_year_to_decade(self, frame):
        companions = ManyToOnePartitioner().find_companions(frame, "year")
        assert "decade" in companions

    def test_rejects_non_functional_relationships(self, frame):
        # value -> decade is functional here, but decade -> year is not.
        companions = ManyToOnePartitioner().find_companions(frame, "decade")
        assert "year" not in companions

    def test_partition_labels_come_from_companion(self, frame):
        partition = ManyToOnePartitioner().partition(frame, "year", n_sets=5)
        assert partition is not None
        assert partition.source_attribute == "year"
        assert all(row_set.label_attribute == "decade" for row_set in partition.sets)
        assert {row_set.label for row_set in partition.sets} == {"1990s", "2000s", "2010s"}

    def test_no_companion_returns_none(self):
        frame = DataFrame({
            "a": np.asarray([1.0, 2.0, 3.0]),
            "b": np.asarray([4.0, 5.0, 6.0]),
        })
        assert ManyToOnePartitioner().partition(frame, "a", 3) is None

    def test_identical_cardinality_not_coarser(self):
        frame = DataFrame({
            "a": np.asarray(["x", "y", "z"], dtype=object),
            "b": np.asarray(["p", "q", "r"], dtype=object),
        })
        assert ManyToOnePartitioner().find_companions(frame, "a") == []


class TestMappingPartitioner:
    def test_custom_buckets(self, frame):
        partitioner = MappingPartitioner("era", lambda year: "old" if year < 2000 else "new")
        partition = partitioner.partition(frame, "year", n_sets=5)
        assert {row_set.label for row_set in partition.sets} == {"old", "new"}

    def test_none_goes_to_ignore_set(self, frame):
        partitioner = MappingPartitioner("era", lambda year: None if year < 2000 else "new")
        partition = partitioner.partition(frame, "year", n_sets=5)
        assert partition is None or partition.ignore_set is not None

    def test_single_bucket_returns_none(self, frame):
        partitioner = MappingPartitioner("era", lambda year: "all")
        assert partitioner.partition(frame, "year", 5) is None


class TestBuildPartitions:
    def test_all_methods_contribute(self, frame):
        partitions = build_partitions(frame, ["year"], [5], default_partitioners())
        methods = {partition.method for partition in partitions}
        assert methods == {"frequency", "binning", "many_to_one"}

    def test_duplicate_partitions_removed(self, frame):
        partitions = build_partitions(frame, ["decade"], [3, 10], default_partitioners(("frequency",)))
        # 3 and 10 requested sets collapse to the same 3-value partition.
        assert len(partitions) == 1

    def test_low_cardinality_attributes_skipped(self):
        frame = DataFrame({"c": np.asarray(["x", "x", "x"], dtype=object)})
        assert build_partitions(frame, ["c"], [5], default_partitioners()) == []

    def test_unknown_method_rejected(self):
        with pytest.raises(PartitionError):
            default_partitioners(("nope",))

    def test_row_set_key_is_hashable(self, frame):
        partition = FrequencyPartitioner().partition(frame, "decade", 3)
        keys = {row_set.key() for row_set in partition.sets}
        assert len(keys) == 3
