"""Tests of the intervention-execution backend layer.

The central property: :class:`IncrementalBackend` and
:class:`ExactRerunBackend` are observationally equivalent — same candidate
pools, same skylines, contributions within ``1e-9`` — on every operation
family of the paper (group-by, filter, join, union) over the three
evaluation datasets, while the incremental backend never re-runs the
operation on the sliceable/decomposable paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ContributionCalculator,
    DiversityMeasure,
    ExactRerunBackend,
    ExceptionalityMeasure,
    FedexConfig,
    FedexExplainer,
    FrequencyPartitioner,
    IncrementalBackend,
    NumericBinningPartitioner,
    ParallelBackend,
    available_backends,
    make_backend,
)
from repro.errors import ExplanationError
from repro.dataframe import Column, Comparison, DataFrame
from repro.operators import ExploratoryStep, Filter, GroupBy, Join, Project, Union


def _assert_reports_equivalent(step, measure=None, config_kwargs=None, tol=1e-9):
    """Explain ``step`` with both backends and compare everything observable."""
    kwargs = dict(config_kwargs or {})
    exact = FedexExplainer(FedexConfig(backend="exact", **kwargs)).explain(step, measure=measure)
    incremental = FedexExplainer(FedexConfig(backend="incremental", **kwargs)).explain(
        step, measure=measure
    )

    assert exact.skyline_keys() == incremental.skyline_keys()
    exact_scores = {
        c.key(): (c.contribution, c.standardized_contribution) for c in exact.all_candidates
    }
    incremental_scores = {
        c.key(): (c.contribution, c.standardized_contribution)
        for c in incremental.all_candidates
    }
    assert set(exact_scores) == set(incremental_scores)
    for key, (raw, std) in exact_scores.items():
        raw_i, std_i = incremental_scores[key]
        assert raw == pytest.approx(raw_i, abs=tol)
        assert std == pytest.approx(std_i, abs=tol)
    return exact, incremental


def _assert_partition_contributions_match(step, measure, partition, attributes, tol=1e-9):
    exact = ContributionCalculator(step, measure, backend="exact")
    incremental = ContributionCalculator(step, measure, backend="incremental")
    for attribute in attributes:
        raw_e = exact.partition_contributions(partition, attribute)
        raw_i = incremental.partition_contributions(partition, attribute)
        assert raw_e == pytest.approx(raw_i, abs=tol)


# ---------------------------------------------------------------- construction
class TestBackendSelection:
    def test_available_backends(self):
        registry = available_backends()
        assert registry["exact"] is ExactRerunBackend
        assert registry["incremental"] is IncrementalBackend
        assert registry["parallel"] is ParallelBackend

    def test_make_backend_forwards_supported_options_only(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        measure = ExceptionalityMeasure()
        options = {"workers": 2, "context": None}
        parallel = make_backend("parallel", step, measure, options=options)
        assert parallel.workers == 2
        # The exact backend accepts neither option; they must be dropped, not crash.
        exact = make_backend("exact", step, measure, options=options)
        assert isinstance(exact, ExactRerunBackend)

    def test_make_backend_by_name_class_and_instance(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        measure = ExceptionalityMeasure()
        by_name = make_backend("exact", step, measure)
        assert isinstance(by_name, ExactRerunBackend)
        by_class = make_backend(IncrementalBackend, step, measure)
        assert isinstance(by_class, IncrementalBackend)
        assert make_backend(by_name, step, measure) is by_name

    def test_unknown_backend_rejected(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        with pytest.raises(ExplanationError):
            make_backend("turbo", step, ExceptionalityMeasure())
        with pytest.raises(ExplanationError):
            FedexConfig(backend="turbo")

    def test_calculator_defaults_to_incremental(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        calculator = ContributionCalculator(step, ExceptionalityMeasure())
        assert isinstance(calculator.backend, IncrementalBackend)

    def test_engine_uses_configured_backend(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        report = FedexExplainer(FedexConfig(backend="exact")).explain(step)
        assert report.config.backend == "exact"


class TestRawContributionCache:
    def test_partition_pass_runs_once(self, tiny_frame):
        """standardized_contributions reuses the cached raw list (no second pass)."""
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        calculator = ContributionCalculator(step, ExceptionalityMeasure(), backend="exact")
        partition = FrequencyPartitioner().partition(tiny_frame, "decade", 3)

        calls = []
        original = calculator.backend.partition_contributions

        def counting(partition, attribute, baseline):
            calls.append(attribute)
            return original(partition, attribute, baseline)

        calculator.backend.partition_contributions = counting
        raw = calculator.partition_contributions(partition, "decade")
        standardized = calculator.standardized_contributions(partition, "decade")
        assert calls == ["decade"]
        assert len(standardized) == len(raw)

    def test_cached_list_is_copied(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        calculator = ContributionCalculator(step, ExceptionalityMeasure())
        partition = FrequencyPartitioner().partition(tiny_frame, "decade", 3)
        first = calculator.partition_contributions(partition, "decade")
        first[0] = 123.0
        assert calculator.partition_contributions(partition, "decade")[0] != 123.0


# ------------------------------------------------------------- structural hooks
class TestOperationHooks:
    def test_filter_row_mask_reconstructs_output(self, tiny_frame):
        operation = Filter(Comparison("popularity", ">", 65))
        sources = operation.row_mask([tiny_frame])
        output = operation.apply([tiny_frame])
        assert sources[0].shape[0] == output.num_rows
        assert tiny_frame.take(sources[0]) == output

    def test_union_row_mask_covers_all_inputs(self, tiny_frame):
        operation = Union()
        inputs = [tiny_frame, tiny_frame]
        sources = operation.row_mask(inputs)
        output = operation.apply(inputs)
        assert all(src.shape[0] == output.num_rows for src in sources)
        # Every output row derives from exactly one input.
        derived = sum((src >= 0).astype(int) for src in sources)
        assert np.all(derived == 1)

    def test_project_row_mask_is_identity(self, tiny_frame):
        operation = Project(["year", "decade"])
        sources = operation.row_mask([tiny_frame])
        assert np.array_equal(sources[0], np.arange(tiny_frame.num_rows))

    def test_inner_join_row_mask_reconstructs_output_keys(self):
        left = DataFrame({"k": np.asarray([1.0, 2.0, 3.0]), "a": np.asarray([10.0, 20.0, 30.0])})
        right = DataFrame({"k": np.asarray([2.0, 2.0, 3.0]), "b": np.asarray([1.0, 2.0, 3.0])})
        operation = Join("k")
        output = operation.apply([left, right])
        left_src, right_src = operation.row_mask([left, right])
        assert np.array_equal(left["k"].values[left_src], output["k"].values)
        assert np.array_equal(right["b"].values[right_src], output["b"].values)

    def test_left_join_right_removals_not_sliceable(self):
        left = DataFrame({"k": np.asarray([1.0, 2.0]), "a": np.asarray([1.0, 2.0])})
        right = DataFrame({"k": np.asarray([2.0]), "b": np.asarray([9.0])})
        sources = Join("k", how="left").row_mask([left, right])
        assert sources[1] is None
        assert sources[0].shape[0] == 2

    def test_groupby_decomposable_aggregates(self):
        specs = GroupBy("g", {"v": ["mean", "max"]}, include_count=True).decomposable_aggregates()
        assert specs == {"mean_v": ("mean", "v"), "max_v": ("max", "v"), "count": ("count", None)}

    def test_groupby_median_and_std_decomposable(self):
        specs = GroupBy("g", {"v": ["median", "std"]}).decomposable_aggregates()
        assert specs == {"median_v": ("median", "v"), "std_v": ("std", "v")}

    def test_base_operation_hooks_default_to_none(self, tiny_frame):
        operation = GroupBy("decade")
        assert operation.row_mask([tiny_frame]) is None


# ------------------------------------------------------ end-to-end equivalence
class TestBackendEquivalenceSpotify:
    def test_groupby_all_decomposable_aggregates(self, spotify_small):
        step = ExploratoryStep([spotify_small], GroupBy(
            "decade",
            {"loudness": ["mean", "min", "max", "sum"], "popularity": ["mean"]},
            include_count=True,
        ))
        _assert_reports_equivalent(step)

    def test_groupby_with_pre_filter(self, spotify_small):
        step = ExploratoryStep([spotify_small], GroupBy(
            "decade", {"loudness": ["mean"]}, pre_filter=Comparison("year", ">=", 1990)
        ))
        _assert_reports_equivalent(step)

    def test_groupby_median_and_std_aggregates(self, spotify_small):
        step = ExploratoryStep([spotify_small], GroupBy(
            "decade", {"loudness": ["median", "std"]}
        ))
        exact, incremental = _assert_reports_equivalent(step)
        assert exact.skyline_candidates  # the incremental paths find explanations too

    def test_filter_step(self, spotify_small):
        step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
        _assert_reports_equivalent(step)

    def test_filter_on_categorical_column(self, spotify_small):
        step = ExploratoryStep([spotify_small], Filter(Comparison("decade", "==", "2010s")))
        _assert_reports_equivalent(step)

    def test_union_step(self, spotify_small):
        early = spotify_small.filter(Comparison("year", "<", 1990))
        late = spotify_small.filter(Comparison("year", ">=", 1990))
        step = ExploratoryStep([early, late], Union())
        _assert_reports_equivalent(step)

    def test_exceptionality_override_on_groupby_falls_back(self, spotify_small):
        step = ExploratoryStep([spotify_small], GroupBy("decade", {"loudness": ["mean"]}))
        _assert_reports_equivalent(step, measure="exceptionality")


class TestBackendEquivalenceCredit:
    def test_multi_key_groupby(self, credit_small):
        step = ExploratoryStep([credit_small], GroupBy(
            ["Education_Level", "Marital_Status"],
            {"Credit_Limit": ["mean", "min"]},
            include_count=True,
        ))
        _assert_reports_equivalent(step)

    def test_categorical_filter(self, credit_small):
        step = ExploratoryStep([credit_small], Filter(
            Comparison("Attrition_Flag", "==", "Attrited Customer")
        ))
        _assert_reports_equivalent(step)


class TestBackendEquivalenceProducts:
    def test_inner_join(self, products_and_sales_small):
        products, sales = products_and_sales_small
        step = ExploratoryStep([products, sales], Join("item"))
        _assert_reports_equivalent(step)

    def test_left_join_right_input_incremental(self, products_and_sales_small):
        products, sales = products_and_sales_small
        step = ExploratoryStep([products, sales], Join("item", how="left"))
        _assert_reports_equivalent(step)

    def test_join_partition_contributions_on_right_input(self, products_and_sales_small):
        """Row sets of the *right* join input go through the slicing path too."""
        products, sales = products_and_sales_small
        step = ExploratoryStep([products, sales], Join("item"))
        partition = FrequencyPartitioner().partition(sales, "county", 5, input_index=1)
        _assert_partition_contributions_match(
            step, ExceptionalityMeasure(), partition, ["county", "total"]
        )


class TestIncrementalInternals:
    def test_slicing_paths_never_rerun(self, spotify_small):
        """On a filter step the incremental backend must not fall back."""
        step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
        backend = IncrementalBackend(step, ExceptionalityMeasure())
        calculator = ContributionCalculator(step, ExceptionalityMeasure(), backend=backend)
        partition = FrequencyPartitioner().partition(spotify_small, "decade", 5)
        calculator.partition_contributions(partition, "decade")
        assert not backend._fallback._reduced_cache

    def test_groupby_paths_never_rerun(self, spotify_small):
        step = ExploratoryStep([spotify_small], GroupBy("decade", {"loudness": ["mean"]}))
        backend = IncrementalBackend(step, DiversityMeasure())
        calculator = ContributionCalculator(step, DiversityMeasure(), backend=backend)
        partition = NumericBinningPartitioner().partition(spotify_small, "year", 5)
        calculator.partition_contributions(partition, "mean_loudness")
        assert not backend._fallback._reduced_cache

    def test_groupby_median_std_paths_never_rerun(self, spotify_small):
        step = ExploratoryStep([spotify_small], GroupBy(
            "decade", {"loudness": ["median", "std"]}
        ))
        backend = IncrementalBackend(step, DiversityMeasure())
        calculator = ContributionCalculator(step, DiversityMeasure(), backend=backend)
        partition = NumericBinningPartitioner().partition(spotify_small, "year", 5)
        calculator.partition_contributions(partition, "median_loudness")
        calculator.partition_contributions(partition, "std_loudness")
        assert not backend._fallback._reduced_cache

    def test_infinite_aggregate_values_survive_min_max(self):
        """Genuine +/-inf values must not be mistaken for the empty-group sentinel."""
        frame = DataFrame({
            "k": np.asarray(["a", "a", "b", "b", "c", "c"], dtype=object),
            "p": np.asarray(["x", "y", "x", "y", "x", "y"], dtype=object),
            "v": np.asarray([1.0, np.inf, 2.0, 3.0, 4.0, -np.inf]),
        })
        step = ExploratoryStep([frame], GroupBy("k", {"v": ["max", "min"]}))
        partition = FrequencyPartitioner().partition(frame, "p", 2)
        for attribute in ("max_v", "min_v"):
            exact = ContributionCalculator(step, DiversityMeasure(), backend="exact")
            incremental = ContributionCalculator(step, DiversityMeasure(), backend="incremental")
            raw_e = exact.partition_contributions(partition, attribute)
            raw_i = incremental.partition_contributions(partition, attribute)
            for value_e, value_i in zip(raw_e, raw_i):
                if np.isnan(value_e):
                    assert np.isnan(value_i)
                else:
                    assert value_e == pytest.approx(value_i, abs=1e-9)

    def test_no_op_intervention_contributes_exactly_zero(self, spotify_small):
        """Sets fully outside the pre-filter must yield a bit-exact 0.0."""
        step = ExploratoryStep([spotify_small], GroupBy(
            "decade", {"loudness": ["mean"]}, pre_filter=Comparison("year", ">=", 3000)
        ))
        calculator = ContributionCalculator(step, DiversityMeasure())
        partition = FrequencyPartitioner().partition(spotify_small, "decade", 3)
        raw = calculator.partition_contributions(partition, "mean_loudness")
        assert raw == [0.0] * len(partition.sets)


# -------------------------------------------------------- left join, right side
class TestLeftJoinRightSide:
    """Right-side removals of a left join: the incremental plan vs the oracle.

    Removing right rows is not a slice of the output — left rows whose
    matches all disappear resurface as unmatched — so this family has its
    own plan (:class:`_LeftJoinRightPlan`) built on the join's match
    structure.  Every test compares against :class:`ExactRerunBackend`
    bit-for-bit (the plan assembles the same value arrays in the same
    order) and asserts the plan actually engaged (no fallback rerun).
    """

    def _tiny_join(self):
        # k=2 has two matches, k=3 one, k=4 none; removing both k=2 right
        # rows resurrects the k=2 left rows as unmatched.
        left = DataFrame({
            "k": np.asarray([1.0, 2.0, 2.0, 3.0, 4.0]),
            "a": np.asarray([10.0, 20.0, 21.0, 30.0, 40.0]),
            "c": np.asarray(["p", "q", "q", "r", "s"], dtype=object),
        })
        right = DataFrame({
            "k": np.asarray([1.0, 2.0, 2.0, 3.0, 9.0]),
            "b": np.asarray([1.5, 2.5, 2.6, 3.5, 9.5]),
            "d": np.asarray(["x", "y", "y", "z", "w"], dtype=object),
        })
        return left, right, ExploratoryStep([left, right], Join("k", how="left"))

    def _right_sets(self, right, attribute):
        from repro.core.partition import RowSet

        combos = [np.asarray([1, 2]), np.asarray([0]), np.asarray([3, 4]),
                  np.asarray([0, 1, 2, 3, 4]), np.asarray([], dtype=np.int64)]
        return [
            RowSet(label=f"s{i}", indices=idx.astype(np.int64), source_attribute=attribute,
                   label_attribute=attribute, method="frequency", input_index=1)
            for i, idx in enumerate(combos)
        ]

    @pytest.mark.parametrize("attribute", ["a", "b", "c", "d", "k"])
    def test_exceptionality_matches_oracle_bitwise(self, attribute):
        left, right, step = self._tiny_join()
        measure = ExceptionalityMeasure()
        exact = ExactRerunBackend(step, measure)
        incremental = IncrementalBackend(step, measure)
        for row_set in self._right_sets(right, attribute):
            assert incremental.reduced_score(row_set, attribute) == \
                exact.reduced_score(row_set, attribute)
        assert not incremental._fallback._reduced_cache

    @pytest.mark.parametrize("attribute", ["a", "b", "k"])
    def test_diversity_matches_oracle_bitwise(self, attribute):
        left, right, step = self._tiny_join()
        measure = DiversityMeasure()
        exact = ExactRerunBackend(step, measure)
        incremental = IncrementalBackend(step, measure)
        for row_set in self._right_sets(right, attribute):
            assert incremental.reduced_score(row_set, attribute) == \
                exact.reduced_score(row_set, attribute)
        assert not incremental._fallback._reduced_cache

    def test_collision_suffixed_columns(self):
        """Shared non-key column names resolve through the suffix mapping."""
        left = DataFrame({"k": np.asarray([1.0, 2.0, 3.0]),
                          "v": np.asarray([5.0, 6.0, 7.0])})
        right = DataFrame({"k": np.asarray([2.0, 3.0, 3.0]),
                           "v": np.asarray([1.0, 2.0, 3.0])})
        step = ExploratoryStep([left, right], Join("k", how="left"))
        assert "v_left" in step.output and "v_right" in step.output
        measure = DiversityMeasure()
        exact = ExactRerunBackend(step, measure)
        incremental = IncrementalBackend(step, measure)
        for attribute in ("v_left", "v_right"):
            for row_set in self._right_sets(right, attribute)[:4]:
                row_set.indices = row_set.indices[row_set.indices < right.num_rows]
                assert incremental.reduced_score(row_set, attribute) == \
                    exact.reduced_score(row_set, attribute)
        assert not incremental._fallback._reduced_cache

    def test_right_side_partition_never_reruns(self, products_and_sales_small):
        products, sales = products_and_sales_small
        step = ExploratoryStep([products, sales], Join("item", how="left"))
        backend = IncrementalBackend(step, ExceptionalityMeasure())
        calculator = ContributionCalculator(step, ExceptionalityMeasure(), backend=backend)
        partition = FrequencyPartitioner().partition(sales, "county", 5, input_index=1)
        calculator.partition_contributions(partition, "county")
        assert not backend._fallback._reduced_cache

    def test_right_side_partition_matches_oracle(self, products_and_sales_small):
        products, sales = products_and_sales_small
        step = ExploratoryStep([products, sales], Join("item", how="left"))
        partition = FrequencyPartitioner().partition(sales, "county", 5, input_index=1)
        _assert_partition_contributions_match(
            step, ExceptionalityMeasure(), partition, ["county", "total"], tol=0.0
        )

    def test_sales_side_full_engine(self, products_and_sales_small):
        """Left join with the dimension table on the right (the lookup shape)."""
        products, sales = products_and_sales_small
        step = ExploratoryStep([sales, products], Join("item", how="left"))
        _assert_reports_equivalent(step, tol=0.0)


class TestExactBackendKeying:
    def test_label_collisions_never_share_materialisations(self, tiny_frame):
        """Two sets with equal display labels but different rows must not collide.

        Binning labels keep three significant digits, so different intervals
        of different granularities can render identically — the exact
        backend keys its memo on the removed-row content, never the label.
        """
        from repro.core.partition import RowSet

        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        backend = ExactRerunBackend(step, ExceptionalityMeasure())
        first = RowSet(label="[1.0, 2.0)", indices=np.asarray([0, 1], dtype=np.int64),
                       source_attribute="year", label_attribute="year", method="binning")
        second = RowSet(label="[1.0, 2.0)", indices=np.asarray([2, 3], dtype=np.int64),
                        source_attribute="year", label_attribute="year", method="binning")
        _, output_first = backend.reduced_step(first)
        _, output_second = backend.reduced_step(second)
        assert output_first is not output_second
        assert len(backend._reduced_cache) == 2


# -------------------------------------------------------------- property-style
_values = st.lists(
    st.one_of(st.floats(min_value=-100, max_value=100, allow_nan=False), st.just(float("nan"))),
    min_size=8, max_size=40,
)
_labels = st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=8, max_size=40)


def _property_frame(values, labels):
    n = min(len(values), len(labels))
    return DataFrame({
        "value": np.asarray(values[:n], dtype=float),
        "label": np.asarray(labels[:n], dtype=object),
    })


@given(_values, _labels)
@settings(max_examples=25, deadline=None)
def test_property_groupby_backends_agree(values, labels):
    frame = _property_frame(values, labels)
    if frame["label"].n_unique() < 2:
        return
    step = ExploratoryStep([frame], GroupBy(
        "label", {"value": ["mean", "min", "max", "sum", "median", "std"]}, include_count=True
    ))
    partition = FrequencyPartitioner().partition(frame, "label", 3)
    if partition is None:
        return
    measure = DiversityMeasure()
    for attribute in ("mean_value", "min_value", "max_value", "sum_value",
                      "median_value", "std_value", "count"):
        exact = ContributionCalculator(step, measure, backend="exact")
        incremental = ContributionCalculator(step, measure, backend="incremental")
        raw_e = exact.partition_contributions(partition, attribute)
        raw_i = incremental.partition_contributions(partition, attribute)
        assert raw_e == pytest.approx(raw_i, abs=1e-9)


@given(_values, _labels, st.floats(min_value=-50, max_value=50, allow_nan=False))
@settings(max_examples=25, deadline=None)
def test_property_filter_backends_agree(values, labels, threshold):
    frame = _property_frame(values, labels)
    step = ExploratoryStep([frame], Filter(Comparison("value", ">", threshold)))
    measure = ExceptionalityMeasure()
    for attribute_column in ("label", "value"):
        partition = FrequencyPartitioner().partition(frame, "label", 3)
        if partition is None:
            return
        exact = ContributionCalculator(step, measure, backend="exact")
        incremental = ContributionCalculator(step, measure, backend="incremental")
        raw_e = exact.partition_contributions(partition, attribute_column)
        raw_i = incremental.partition_contributions(partition, attribute_column)
        assert raw_e == pytest.approx(raw_i, abs=1e-9)
