"""Graceful drain: in-flight work completes, new work is shed, close is
idempotent under concurrent callers, and the exporter is flushed."""

from __future__ import annotations

import http.client
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import ExplanationService, ServiceConfig
from repro.serving import ExplanationServer


class _FakeReport:
    """The minimal surface report_document() reads."""

    explanations = ()
    selected_columns = ()
    interestingness_scores = {}
    all_candidates = ()
    timings = {}

    def skyline_keys(self):
        return []


@pytest.fixture
def slow_served(spotify_small):
    """A server whose (single) tenant session blocks until released."""
    service = ExplanationService(service_config=ServiceConfig(workers=2))
    started = threading.Event()
    release = threading.Event()
    session = service.session("anonymous")

    def slow_explain(step, measure=None, config=None, progress=None):
        if progress is not None:
            progress({"phase": "contribution", "pair": 1, "pairs": 1})
        started.set()
        release.wait(timeout=30)
        return _FakeReport()

    session.explain = slow_explain
    server = ExplanationServer(service,
                               frames={"spotify": spotify_small}).start()
    yield server, service, started, release
    release.set()
    server.close()
    service.close()


BODY = json.dumps({"query": "SELECT * FROM spotify WHERE popularity > 65"}).encode()


def _post(server, path="/explain", timeout=30):
    request = urllib.request.Request(server.url + path, data=BODY)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestDrain:
    def test_inflight_completes_while_new_requests_get_503(self, slow_served):
        server, service, started, release = slow_served
        outcome = {}

        def inflight():
            outcome["response"] = _post(server)

        worker = threading.Thread(target=inflight)
        worker.start()
        assert started.wait(timeout=20)

        closer = threading.Thread(target=server.close)
        closer.start()
        # The drain flag flips synchronously at the start of close().
        deadline_passed = False
        for _ in range(200):
            with urllib.request.urlopen(server.url + "/healthz",
                                        timeout=5) as response:
                if json.loads(response.read())["status"] == "draining":
                    deadline_passed = True
                    break
        assert deadline_passed

        # New explanation requests are shed with an honest 503 while the
        # listener is still up (so load balancers see the status)...
        status, body = _post(server)
        assert status == 503
        assert "draining" in json.loads(body)["error"]
        # ...but the in-flight request is allowed to finish normally.
        assert "response" not in outcome
        release.set()
        worker.join(timeout=20)
        closer.join(timeout=20)
        status, body = outcome["response"]
        assert status == 200
        assert json.loads(body)["explanations"] == []

    def test_inflight_stream_completes_through_drain(self, slow_served):
        server, service, started, release = slow_served
        outcome = {}

        def stream():
            connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                                    timeout=30)
            connection.request("POST", "/explain/stream", body=BODY)
            response = connection.getresponse()
            outcome["events"] = [json.loads(line) for line in
                                 response.read().decode().strip().split("\n")]
            connection.close()

        worker = threading.Thread(target=stream)
        worker.start()
        assert started.wait(timeout=20)
        closer = threading.Thread(target=server.close)
        closer.start()
        release.set()
        worker.join(timeout=20)
        closer.join(timeout=20)
        kinds = [event["event"] for event in outcome["events"]]
        assert "progress" in kinds
        assert kinds[-1] == "report"

    def test_close_flushes_the_exporter(self, spotify_small, tmp_path,
                                        monkeypatch):
        service = ExplanationService()
        service.attach_observability(export_sink=str(tmp_path / "spans.jsonl"))
        monkeypatch.setenv("REPRO_TRACE", "1")
        server = ExplanationServer(service,
                                   frames={"spotify": spotify_small}).start()
        status, _ = _post(server)
        assert status == 200
        server.close()
        # Every span of the served request reached the sink before close()
        # returned — nothing left queued.
        contents = (tmp_path / "spans.jsonl").read_text()
        assert '"name": "explain"' in contents
        service.close()

    def test_concurrent_close_is_idempotent(self, slow_served):
        server, service, started, release = slow_served
        worker = threading.Thread(target=_post, args=(server,))
        worker.start()
        assert started.wait(timeout=20)

        finished = []

        def closer():
            server.close(timeout_s=30)
            finished.append(True)

        closers = [threading.Thread(target=closer) for _ in range(4)]
        for thread in closers:
            thread.start()
        release.set()
        for thread in closers:
            thread.join(timeout=30)
        worker.join(timeout=20)
        assert finished == [True] * 4
        # A straggler close() after the fact returns immediately.
        server.close()

    def test_close_before_start_is_a_no_op(self):
        service = ExplanationService()
        server = ExplanationServer(service)
        server.close()
        service.close()

    def test_listener_is_gone_after_close(self, spotify_small):
        service = ExplanationService()
        server = ExplanationServer(service,
                                   frames={"spotify": spotify_small}).start()
        port = server.port
        server.close()
        service.close()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz",
                                   timeout=0.5)
