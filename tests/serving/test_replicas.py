"""The replica fleet: N processes, one dataset store, one shared tier."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro import DatasetStore
from repro.errors import ServingError
from repro.serving import ReplicaFleet

BODY = json.dumps(
    {"query": "SELECT * FROM spotify WHERE popularity > 65"}).encode()


def _ask(url, token="tok", path="/explain", body=BODY):
    request = urllib.request.Request(url + path, data=body)
    if token:
        request.add_header("Authorization", f"Bearer {token}")
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.read()


@pytest.fixture
def store_root(tmp_path, spotify_small):
    store = DatasetStore(tmp_path / "data")
    store.put("spotify", spotify_small)
    store.close()
    return tmp_path / "data"


class TestFleet:
    def test_replicas_agree_and_share_the_tier(self, tmp_path, store_root):
        fleet = ReplicaFleet(store_root, tmp_path / "tier", replicas=2,
                             tokens={"tok": "alice"},
                             fedex_config={"seed": 0})
        with fleet:
            assert len(fleet.urls) == 2
            assert len(set(fleet.ports)) == 2

            first = _ask(fleet.urls[0])
            assert json.loads(first)["explanations"]
            # The first replica's phase artefacts reached the shared
            # segment, keyed under the current manifest epoch.
            tier_entries = list((tmp_path / "tier").rglob("*.pkl"))
            assert tier_entries

            second = _ask(fleet.urls[1])
            # Byte-identical answers across processes: same data (one
            # store), same deterministic pipeline, same serialiser.
            assert first == second

        assert fleet.ports == []  # stop() tore everything down

    def test_health_and_metrics_served_per_replica(self, tmp_path, store_root):
        with ReplicaFleet(store_root, tmp_path / "tier", replicas=2,
                          tokens={"tok": "alice"}) as fleet:
            for url in fleet.urls:
                with urllib.request.urlopen(url + "/healthz",
                                            timeout=30) as response:
                    assert json.loads(response.read())["status"] == "ok"
                with urllib.request.urlopen(url + "/metrics",
                                            timeout=30) as response:
                    assert b"repro_service_requests_total" in response.read()

    def test_broken_store_root_fails_startup_cleanly(self, tmp_path):
        bad_root = tmp_path / "not-a-store"
        bad_root.write_text("a file, not a directory")
        fleet = ReplicaFleet(bad_root, tmp_path / "tier", replicas=1)
        with pytest.raises(ServingError):
            fleet.start()
        assert fleet.ports == []

    def test_at_least_one_replica_required(self, tmp_path):
        with pytest.raises(ValueError):
            ReplicaFleet(tmp_path / "d", tmp_path / "t", replicas=0)

    def test_stop_is_idempotent(self, tmp_path, store_root):
        fleet = ReplicaFleet(store_root, tmp_path / "tier", replicas=1,
                             tokens={"tok": "alice"}).start()
        fleet.stop()
        fleet.stop()
