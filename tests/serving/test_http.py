"""The asyncio HTTP front end: routes, auth, errors, keep-alive, streaming."""

from __future__ import annotations

import http.client
import json
import urllib.error
import urllib.request

import pytest

from repro import (
    Comparison,
    ExplanationService,
    ExploratoryStep,
    FedexConfig,
    Filter,
    ServiceConfig,
)
from repro.obs.metrics import validate_prometheus_text
from repro.serving import (
    ExplanationServer,
    TokenAuthenticator,
    dump_json,
    report_document,
)

QUERY = "SELECT * FROM spotify WHERE popularity > 65"


@pytest.fixture
def served(spotify_small):
    """A service + server over one small frame, with two tenants."""
    service = ExplanationService(
        config=FedexConfig(seed=0),
        service_config=ServiceConfig(workers=2),
    )
    auth = TokenAuthenticator({"tok-alice": "alice", "tok-bob": "bob"})
    server = ExplanationServer(service, auth=auth,
                               frames={"spotify": spotify_small}).start()
    yield server, service
    server.close()
    service.close()


def _request(server, path, body=None, token="tok-alice", headers=()):
    request = urllib.request.Request(server.url + path, data=body)
    if token is not None:
        request.add_header("Authorization", f"Bearer {token}")
    for key, value in headers:
        request.add_header(key, value)
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def _explain_body(query=QUERY, **extra):
    return json.dumps({"query": query, **extra}).encode("utf-8")


def _stream(server, body, token="tok-alice"):
    """POST /explain/stream and decode the NDJSON chunks into events."""
    connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                            timeout=120)
    headers = {"Authorization": f"Bearer {token}"} if token else {}
    connection.request("POST", "/explain/stream", body=body, headers=headers)
    response = connection.getresponse()
    try:
        raw = response.read()
        return response, [json.loads(line)
                          for line in raw.decode().strip().split("\n") if line]
    finally:
        connection.close()


class TestOpsRoutes:
    def test_healthz(self, served):
        server, _ = served
        status, _, body = _request(server, "/healthz", token=None)
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["inflight"] == 0
        assert payload["workers"] == 2

    def test_metrics_is_valid_prometheus(self, served):
        server, _ = served
        _request(server, "/explain", body=_explain_body())
        status, headers, body = _request(server, "/metrics", token=None)
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        families = validate_prometheus_text(body.decode())
        assert families["repro_service_requests_total"] == "counter"
        assert "repro_service_inflight" in families

    def test_unknown_route_404_and_wrong_method_405(self, served):
        server, _ = served
        status, _, _ = _request(server, "/nope", token=None)
        assert status == 404
        status, _, _ = _request(server, "/explain", token=None)  # GET
        assert status == 405


class TestExplain:
    def test_explain_returns_full_report(self, served, spotify_small):
        server, service = served
        status, headers, body = _request(server, "/explain",
                                         body=_explain_body())
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        document = json.loads(body)
        assert document["explanations"]
        assert document["skyline_keys"]
        # The served document is exactly the service's own report.
        step = ExploratoryStep([spotify_small],
                               Filter(Comparison("popularity", ">", 65)))
        report = service.explain("alice", step)
        assert body == dump_json(report_document(report))

    def test_tenant_identity_comes_from_the_token(self, served):
        server, service = served
        _request(server, "/explain", body=_explain_body(), token="tok-bob")
        assert service.metrics.snapshot("bob")["requests"] == 1
        assert service.metrics.snapshot("alice")["requests"] == 0

    def test_config_override_shapes_the_result(self, served):
        server, _ = served
        _, _, body = _request(
            server, "/explain",
            body=_explain_body(config={"top_k_explanations": 1}))
        assert len(json.loads(body)["explanations"]) == 1

    @pytest.mark.parametrize("token,expected", [
        (None, 401), ("wrong", 401)])
    def test_auth_failures_are_401(self, served, token, expected):
        server, _ = served
        status, headers, _ = _request(server, "/explain",
                                      body=_explain_body(), token=token)
        assert status == expected
        assert headers.get("WWW-Authenticate") == "Bearer"

    def test_bad_json_is_400(self, served):
        server, _ = served
        status, _, body = _request(server, "/explain", body=b"{nope")
        assert status == 400
        assert "JSON" in json.loads(body)["error"]

    def test_unknown_dataset_is_404(self, served):
        server, _ = served
        status, _, _ = _request(
            server, "/explain",
            body=_explain_body(query="SELECT * FROM missing WHERE x > 1"))
        assert status == 404

    def test_oversized_declared_body_is_413(self, served):
        server, _ = served
        status, _, _ = _request(server, "/explain", body=b"x" * (300 * 1024))
        assert status == 413

    def test_keep_alive_serves_many_requests_on_one_connection(self, served):
        server, _ = served
        connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                                timeout=60)
        try:
            bodies = []
            for _ in range(3):
                connection.request(
                    "POST", "/explain", body=_explain_body(),
                    headers={"Authorization": "Bearer tok-alice"})
                response = connection.getresponse()
                assert response.status == 200
                assert response.getheader("Connection") == "keep-alive"
                bodies.append(response.read())
            assert bodies[0] == bodies[1] == bodies[2]
        finally:
            connection.close()


class TestStreaming:
    def test_stream_is_chunked_ndjson_with_one_final_report(self, served):
        server, _ = served
        response, events = _stream(server, _explain_body())
        assert response.status == 200
        assert response.getheader("Transfer-Encoding") == "chunked"
        assert response.getheader("Content-Type") == "application/x-ndjson"
        kinds = [event["event"] for event in events]
        assert kinds[-1] == "report"
        assert kinds.count("report") == 1
        assert set(kinds[:-1]) <= {"progress"}

    def test_cold_stream_emits_progress_per_pair_in_order(self, served):
        server, _ = served
        # A query this tenant pool has not answered: progress events flow
        # while later (partition, attribute) pairs still compute.
        body = _explain_body(query="SELECT * FROM spotify WHERE energy < 0.4")
        _, events = _stream(server, body)
        progress = [event for event in events if event["event"] == "progress"]
        assert progress, "cold request must stream partial results"
        pairs = [event["pair"] for event in progress]
        assert pairs == sorted(pairs)
        assert progress[-1]["pairs"] >= progress[-1]["pair"]
        assert all(event["phase"] == "contribution" for event in progress)

    def test_streamed_report_is_bit_identical_to_plain_endpoint(self, served):
        server, _ = served
        body = _explain_body(query="SELECT * FROM spotify WHERE loudness < -9")
        _, events = _stream(server, body)
        final = events[-1]
        assert final["event"] == "report"
        _, _, plain = _request(server, "/explain", body=body)
        assert dump_json(final["report"]) == plain

    def test_stream_auth_failure_is_a_plain_401(self, served):
        server, _ = served
        response, events = _stream(server, _explain_body(), token=None)
        assert response.status == 401

    def test_mid_stream_failure_reports_an_error_event(self, served):
        server, _ = served
        body = _explain_body(
            config={"target_columns": ["no_such_column"]})
        response, events = _stream(server, body)
        assert response.status == 200  # head already sent; error is in-band
        assert events[-1]["event"] == "error"
        assert events[-1]["status"] == 400


class TestWithoutAuth:
    def test_unauthenticated_server_uses_default_tenant(self, spotify_small):
        service = ExplanationService(config=FedexConfig(seed=0))
        server = ExplanationServer(service, frames={"spotify": spotify_small},
                                   default_tenant="everyone").start()
        try:
            status, _, _ = _request(server, "/explain", body=_explain_body(),
                                    token=None)
            assert status == 200
            assert service.metrics.snapshot("everyone")["requests"] == 1
        finally:
            server.close()
            service.close()

    def test_dataset_store_resolution(self, tmp_path, spotify_small):
        from repro import DatasetStore

        store = DatasetStore(tmp_path / "store")
        store.put("songs", spotify_small)
        service = ExplanationService(config=FedexConfig(seed=0),
                                     dataset_store=store)
        server = ExplanationServer(service).start()
        try:
            status, _, body = _request(
                server, "/explain", token=None,
                body=_explain_body(query="SELECT * FROM songs WHERE popularity > 65"))
            assert status == 200
            assert json.loads(body)["explanations"]
        finally:
            server.close()
            service.close()

    def test_overload_is_429(self, spotify_small):
        import threading

        service = ExplanationService(
            service_config=ServiceConfig(workers=1, max_inflight_per_tenant=1,
                                         admission="reject"))
        server = ExplanationServer(service,
                                   frames={"spotify": spotify_small}).start()
        release = threading.Event()
        started = threading.Event()
        session = service.session("anonymous")

        def slow_explain(step, measure=None, config=None, progress=None):
            started.set()
            release.wait(timeout=20)
            raise RuntimeError("never a real report")

        session.explain = slow_explain
        try:
            def first():
                _request(server, "/explain", body=_explain_body(), token=None)

            thread = threading.Thread(target=first)
            thread.start()
            assert started.wait(timeout=20)
            status, _, body = _request(server, "/explain",
                                       body=_explain_body(), token=None)
            assert status == 429
            assert "in-flight bound" in json.loads(body)["error"]
        finally:
            release.set()
            thread.join(timeout=20)
            server.close()
            service.close()
