"""The serving wire format: request validation and response documents."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import FedexConfig
from repro.core import FedexExplainer
from repro.errors import ServingRequestError, UnknownDatasetError
from repro.operators import Filter
from repro.serving import parse_explain_request, report_document, dump_json
from repro.serving.protocol import MAX_REQUEST_BYTES


def _body(document) -> bytes:
    return json.dumps(document).encode("utf-8")


@pytest.fixture
def resolver(spotify_small):
    frames = {"spotify": spotify_small}
    return frames.__getitem__


BASE = FedexConfig(seed=0)


class TestValidRequests:
    def test_filter_query_parses_into_a_step(self, resolver, spotify_small):
        request = parse_explain_request(
            _body({"query": "SELECT * FROM spotify WHERE popularity > 65"}),
            resolver, BASE)
        assert isinstance(request.step.operation, Filter)
        assert request.step.inputs[0] is spotify_small
        assert request.measure is None
        assert request.config is None

    def test_measure_and_config_flow_through(self, resolver):
        request = parse_explain_request(
            _body({"query": "SELECT * FROM spotify WHERE popularity > 65",
                   "measure": "exceptionality",
                   "config": {"top_k_explanations": 2, "seed": 3}}),
            resolver, BASE)
        assert request.measure == "exceptionality"
        assert request.config.top_k_explanations == 2
        assert request.config.seed == 3
        # Untouched fields inherit from the server's base config.
        assert request.config.top_k_columns == BASE.top_k_columns

    def test_list_overrides_become_tuples(self, resolver):
        request = parse_explain_request(
            _body({"query": "SELECT * FROM spotify WHERE popularity > 65",
                   "config": {"target_columns": ["loudness", "energy"]}}),
            resolver, BASE)
        assert request.config.target_columns == ("loudness", "energy")

    def test_nested_subquery_materialises_inner_step(self, resolver,
                                                     spotify_small):
        request = parse_explain_request(
            _body({"query": "SELECT decade, AVG(loudness) FROM "
                            "[SELECT * FROM spotify WHERE popularity > 65] "
                            "GROUP BY decade"}),
            resolver, BASE)
        inner_output = request.step.inputs[0]
        assert inner_output is not spotify_small
        assert inner_output.num_rows < spotify_small.num_rows


class TestRejectedRequests:
    def _refused(self, body, resolver, exc=ServingRequestError):
        with pytest.raises(exc):
            parse_explain_request(body, resolver, BASE)

    def test_oversized_body(self, resolver):
        query = "SELECT * FROM spotify WHERE popularity > 65"
        padding = "x" * MAX_REQUEST_BYTES
        self._refused(_body({"query": query + " -- " + padding}), resolver)

    def test_invalid_json(self, resolver):
        self._refused(b"{not json", resolver)

    def test_non_object_body(self, resolver):
        self._refused(_body(["a", "list"]), resolver)

    def test_unknown_top_level_field(self, resolver):
        self._refused(_body({"query": "SELECT * FROM spotify WHERE x > 1",
                             "tenant": "mallory"}), resolver)

    @pytest.mark.parametrize("query", [None, "", "   ", 7])
    def test_missing_or_empty_query(self, resolver, query):
        self._refused(_body({"query": query}), resolver)

    def test_unparseable_query(self, resolver):
        self._refused(_body({"query": "DELETE FROM spotify"}), resolver)

    def test_non_string_measure(self, resolver):
        self._refused(_body({"query": "SELECT * FROM spotify WHERE popularity > 65",
                             "measure": 3}), resolver)

    def test_config_must_be_object(self, resolver):
        self._refused(_body({"query": "SELECT * FROM spotify WHERE popularity > 65",
                             "config": [1, 2]}), resolver)

    @pytest.mark.parametrize("key", ["workers", "backend", "nope"])
    def test_non_whitelisted_overrides_refused(self, resolver, key):
        self._refused(_body({"query": "SELECT * FROM spotify WHERE popularity > 65",
                             "config": {key: 1}}), resolver)

    def test_invalid_override_value(self, resolver):
        self._refused(_body({"query": "SELECT * FROM spotify WHERE popularity > 65",
                             "config": {"sample_size": -3}}), resolver)

    def test_unknown_table_is_404(self, resolver):
        self._refused(_body({"query": "SELECT * FROM missing WHERE x > 1"}),
                      resolver, exc=UnknownDatasetError)
        assert UnknownDatasetError.http_status == 404

    def test_resolver_failure_is_404(self):
        def broken(name):
            raise OSError("disk on fire")

        self._refused(_body({"query": "SELECT * FROM spotify WHERE x > 1"}),
                      broken, exc=UnknownDatasetError)


class TestResponseDocuments:
    def test_report_document_shape_and_json_clean(self, spotify_small):
        from repro import Comparison, ExploratoryStep

        step = ExploratoryStep([spotify_small],
                               Filter(Comparison("popularity", ">", 65)))
        report = FedexExplainer(BASE).explain(step)
        document = report_document(report)
        assert document["explanations"]
        assert document["candidates"] == len(report.all_candidates)
        assert document["skyline_keys"]
        # dump_json must serialise every NumPy artefact the report carries.
        payload = dump_json(document)
        assert json.loads(payload)["selected_columns"] == list(
            report.selected_columns)

    def test_dump_json_is_deterministic(self):
        a = dump_json({"b": np.int64(2), "a": np.float64(1.5),
                       "c": np.asarray([1, 2])})
        b = dump_json({"a": 1.5, "c": [1, 2], "b": 2})
        assert a == b  # key order and NumPy types never change the bytes
