"""Bearer-token authentication: parsing, tenants, constant-time lookup."""

from __future__ import annotations

import pytest

from repro.errors import ServingAuthError
from repro.serving import TokenAuthenticator


@pytest.fixture
def auth():
    return TokenAuthenticator({
        "secret-a": "alice",
        "secret-a2": "alice",   # key rotation: two tokens, one tenant
        "secret-b": "bob",
    })


class TestAuthenticate:
    def test_valid_token_yields_its_tenant(self, auth):
        assert auth.authenticate("Bearer secret-a") == "alice"
        assert auth.authenticate("Bearer secret-b") == "bob"

    def test_multiple_tokens_may_share_a_tenant(self, auth):
        assert auth.authenticate("Bearer secret-a2") == "alice"

    def test_scheme_is_case_insensitive(self, auth):
        assert auth.authenticate("bearer secret-a") == "alice"
        assert auth.authenticate("BEARER secret-a") == "alice"

    def test_surrounding_whitespace_tolerated(self, auth):
        assert auth.authenticate("  Bearer secret-a  ") == "alice"

    @pytest.mark.parametrize("header", [
        None,
        "",
        "Bearer",                 # no token
        "Bearer ",                # empty token
        "Basic secret-a",         # wrong scheme
        "secret-a",               # bare token, no scheme
        "Bearer wrong-token",
        "Bearer secret",          # prefix of a real token
        "Bearer secret-a-longer", # real token plus suffix
    ])
    def test_bad_headers_raise_auth_error(self, auth, header):
        with pytest.raises(ServingAuthError):
            auth.authenticate(header)

    def test_auth_error_maps_to_http_401(self):
        assert ServingAuthError.http_status == 401


class TestConstruction:
    def test_empty_mapping_rejected(self):
        with pytest.raises(ValueError):
            TokenAuthenticator({})

    @pytest.mark.parametrize("tokens", [
        {"": "alice"},
        {"tok": ""},
        {None: "alice"},
        {"tok": None},
    ])
    def test_invalid_entries_rejected(self, tokens):
        with pytest.raises((ValueError, TypeError)):
            TokenAuthenticator(tokens)

    def test_len_counts_tokens(self):
        assert len(TokenAuthenticator({"a": "x", "b": "x"})) == 2
