"""The shared cache tier: offers, lookups, epoch invalidation, store hooks."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import Comparison, DataFrame, DatasetStore, ExploratoryStep, Filter
from repro.serving import SharedCacheTier
from repro.session import CacheStore


@pytest.fixture
def tier(tmp_path):
    return SharedCacheTier(tmp_path / "tier", layers=("reports", "scores"))


class TestEntries:
    def test_offer_then_lookup_roundtrips(self, tier):
        assert tier.offer("reports", ("key", 1), {"answer": 42}, nbytes=128)
        value, nbytes = tier.lookup("reports", ("key", 1))
        assert value == {"answer": 42}
        assert nbytes == 128
        assert tier.stats["offers"] == 1
        assert tier.stats["hits"] == 1

    def test_missing_key_is_none(self, tier):
        assert tier.lookup("reports", "never-offered") is None

    def test_non_served_layers_rejected_cheaply(self, tier):
        assert not tier.offer("partitions", "k", "v")
        assert tier.lookup("partitions", "k") is None
        assert tier.entry_count() == 0

    def test_first_writer_wins(self, tier):
        assert tier.offer("reports", "k", "first")
        assert not tier.offer("reports", "k", "second")
        value, _ = tier.lookup("reports", "k")
        assert value == "first"

    def test_oversized_values_skipped(self, tmp_path):
        small = SharedCacheTier(tmp_path / "small", max_value_bytes=64)
        assert not small.offer("reports", "big", "x", nbytes=1_000_000)
        assert not small.offer("reports", "blob", "y" * 10_000)  # blob > cap
        assert small.stats["skipped"] == 2

    def test_unpicklable_values_and_keys_degrade_to_miss(self, tier):
        lock = threading.Lock()  # unpicklable
        assert not tier.offer("reports", "k", lock)
        assert tier.lookup("reports", lock) is None  # unpicklable key

    def test_corrupt_entry_is_a_miss(self, tier):
        tier.offer("reports", "k", "value")
        (path,) = (tier.root / tier.epoch_token()).glob("*.pkl")
        path.write_bytes(b"not a pickle")
        assert tier.lookup("reports", "k") is None


class TestEpochs:
    def _store(self, tmp_path):
        frame = DataFrame({"x": np.arange(100, dtype=float)})
        store = DatasetStore(tmp_path / "data")
        store.put("numbers", frame)
        return store, frame

    def test_epoch_reflects_dataset_versions(self, tmp_path):
        store, frame = self._store(tmp_path)
        tier = SharedCacheTier(tmp_path / "tier", dataset_store=store,
                               epoch_ttl_s=0.0)
        first = tier.epoch_token()
        assert first.startswith("epoch-")
        assert tier.epoch_token() == first  # stable while data is stable

    def test_rewriting_a_dataset_moves_the_epoch(self, tmp_path):
        store, frame = self._store(tmp_path)
        tier = SharedCacheTier(tmp_path / "tier", dataset_store=store,
                               epoch_ttl_s=0.0)
        tier.offer("reports", "k", "stale-answer")
        before = tier.epoch_token()

        rewritten = DataFrame({"x": np.arange(200, dtype=float)})
        store.put("numbers", rewritten)

        after = tier.epoch_token()
        assert after != before
        # The entry belonged to the old epoch: fleet-wide invalidation.
        assert tier.lookup("reports", "k") is None

    def test_another_processes_rewrite_is_observed(self, tmp_path):
        """The epoch must be computed from manifests fresh on disk, not
        from this process's cached dataset handles."""
        store, frame = self._store(tmp_path)
        tier = SharedCacheTier(tmp_path / "tier", dataset_store=store,
                               epoch_ttl_s=0.0)
        store.dataset("numbers")  # populate the handle cache
        before = tier.epoch_token()

        writer = DatasetStore(tmp_path / "data")  # a second "process"
        writer.put("numbers", DataFrame({"x": np.arange(50, dtype=float)}))
        writer.close()

        assert tier.epoch_token() != before

    def test_ttl_caches_the_token(self, tmp_path):
        store, _ = self._store(tmp_path)
        tier = SharedCacheTier(tmp_path / "tier", dataset_store=store,
                               epoch_ttl_s=60.0)
        tier.epoch_token()
        refreshes = tier.stats["epoch_refreshes"]
        for _ in range(10):
            tier.epoch_token()
        assert tier.stats["epoch_refreshes"] == refreshes

    def test_sweep_removes_stale_epochs(self, tmp_path):
        store, _ = self._store(tmp_path)
        tier = SharedCacheTier(tmp_path / "tier", dataset_store=store,
                               epoch_ttl_s=0.0)
        tier.offer("reports", "k", "v")
        store.put("numbers", DataFrame({"x": np.arange(7, dtype=float)}))
        tier.offer("reports", "k", "v2")
        assert tier.sweep() == 1
        assert tier.entry_count() == 1  # current epoch untouched
        value, _ = tier.lookup("reports", "k")
        assert value == "v2"


class TestCacheStoreIntegration:
    def test_local_miss_promotes_from_tier(self, tier):
        writer = CacheStore(tier=tier)
        writer.put("scores", "q1", {"score": 0.9}, tenant="alice")
        assert tier.entry_count() == 1

        reader = CacheStore(tier=tier)  # a different replica's store
        assert reader.get("scores", "q1") == {"score": 0.9}
        assert reader.metrics.as_dict()["tier_hits"] == 1
        # Promoted entries live under the shared pseudo-tenant locally...
        assert reader.tenant_usage(CacheStore.SHARED_TENANT) > 0
        # ...and are served from local memory (no tier read) from then on.
        hits_before = tier.stats["hits"]
        assert reader.get("scores", "q1") == {"score": 0.9}
        assert tier.stats["hits"] == hits_before

    def test_tier_miss_counted_once_per_lookup(self, tier):
        store = CacheStore(tier=tier)
        assert store.get("scores", "absent") is None
        assert store.metrics.as_dict()["tier_misses"] == 1

    def test_promoted_entries_are_not_reoffered(self, tier):
        writer = CacheStore(tier=tier)
        writer.put("scores", "q1", "value")
        reader = CacheStore(tier=tier)
        reader.get("scores", "q1")
        # The promotion inserted locally under the shared tenant; a
        # re-offer would be a wasted disk write (first writer already won).
        assert reader.metrics.as_dict()["tier_offers"] == 0

    def test_tier_failure_degrades_to_plain_miss(self, tier):
        class ExplodingTier:
            def lookup(self, layer, key):
                raise OSError("disk gone")

            def offer(self, layer, key, value, nbytes=None):
                raise OSError("disk gone")

        store = CacheStore(tier=ExplodingTier())
        assert store.get("scores", "q") is None
        assert store.put("scores", "q", "v")  # insert still succeeds
        assert store.get("scores", "q") == "v"

    def test_publish_bulk_promotes_served_layers(self, tier):
        store = CacheStore()
        store.put("scores", "a", 1.0)
        store.put("scores", "b", 2.0)
        store.put("partitions", "c", "not-shared")
        assert tier.publish(store) == 2
        assert tier.entry_count() == 2

    def test_cross_store_report_reuse_end_to_end(self, tmp_path, spotify_small):
        """Two sessions over two stores sharing one tier: the second
        session's report comes from the tier, not recomputation."""
        from repro import ExplanationSession, FedexConfig

        data_store = DatasetStore(tmp_path / "data")
        data_store.put("spotify", spotify_small)
        tier = SharedCacheTier(tmp_path / "tier", dataset_store=data_store)

        def explain_once(store):
            session = ExplanationSession(config=FedexConfig(seed=0),
                                         store=store)
            frame = data_store.open("spotify")
            step = ExploratoryStep([frame],
                                   Filter(Comparison("popularity", ">", 70)))
            return session.explain(step)

        first = explain_once(CacheStore(tier=tier))
        assert tier.entry_count() > 0

        second_store = CacheStore(tier=tier)
        second = explain_once(second_store)
        assert second_store.metrics.as_dict()["tier_hits"] > 0
        assert second.skyline_keys() == first.skyline_keys()
