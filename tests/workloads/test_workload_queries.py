"""Tests of the 30-query evaluation workload (Appendix A)."""

from __future__ import annotations

import pytest

from repro.core import FedexConfig, FedexExplainer
from repro.errors import ExperimentError
from repro.workloads import (
    NOTEBOOK_QUERIES,
    WORKLOAD,
    filter_join_queries,
    get_query,
    groupby_queries,
    queries_for_dataset,
)


class TestWorkloadDefinition:
    def test_thirty_queries(self):
        assert len(WORKLOAD) == 30
        assert [query.number for query in WORKLOAD] == list(range(1, 31))

    def test_split_between_tables_2_and_3(self):
        assert len(filter_join_queries()) == 15
        assert len(groupby_queries()) == 15
        assert all(q.number <= 15 for q in filter_join_queries())
        assert all(q.number >= 16 for q in groupby_queries())

    def test_measure_matches_kind(self):
        for query in WORKLOAD:
            expected = "diversity" if query.kind == "groupby" else "exceptionality"
            assert query.measure == expected

    def test_queries_per_dataset(self):
        assert len(queries_for_dataset("spotify")) == 10
        assert len(queries_for_dataset("bank")) == 10
        assert len(queries_for_dataset("products")) == 10
        assert len(queries_for_dataset("spotify", kinds=["filter"])) == 5

    def test_get_query_bounds(self):
        assert get_query(6).dataset == "spotify"
        with pytest.raises(ExperimentError):
            get_query(31)

    def test_notebook_queries_reference_valid_numbers(self):
        for numbers in NOTEBOOK_QUERIES.values():
            for number in numbers:
                assert 1 <= number <= 30

    def test_sql_strings_present(self):
        assert all("SELECT" in query.sql.upper() for query in WORKLOAD)


class TestStepConstruction:
    @pytest.mark.parametrize("number", [4, 6, 11, 12, 14, 15])
    def test_filter_steps_reduce_rows(self, tiny_registry, number):
        query = get_query(number)
        step = query.build_step(tiny_registry)
        assert step.output.num_rows < step.primary_input.num_rows
        assert step.output.num_rows > 0

    @pytest.mark.parametrize("number", [1, 2, 3])
    def test_join_steps_produce_rows(self, tiny_registry, number):
        step = get_query(number).build_step(tiny_registry)
        assert step.is_multi_input
        assert step.output.num_rows > 0

    @pytest.mark.parametrize("number", [16, 18, 21, 24, 27, 28, 30])
    def test_groupby_steps_produce_groups(self, tiny_registry, number):
        step = get_query(number).build_step(tiny_registry)
        assert 1 < step.output.num_rows < step.primary_input.num_rows

    def test_query_12_is_nested(self, tiny_registry):
        outer = get_query(12).build_step(tiny_registry)
        inner = get_query(11).build_step(tiny_registry)
        assert outer.primary_input.num_rows == inner.output.num_rows


class TestWorkloadExplainability:
    """Every workload query must yield a well-formed FEDEX report."""

    @pytest.mark.parametrize("number", [5, 6, 9, 11, 13, 15])
    def test_filter_queries_explainable(self, tiny_registry, number):
        step = get_query(number).build_step(tiny_registry)
        report = FedexExplainer(FedexConfig(sample_size=2_000, seed=0)).explain(step)
        assert report.interestingness_scores
        assert report.explanations, f"query {number} produced no explanation"

    @pytest.mark.parametrize("number", [16, 19, 21, 23, 26, 29])
    def test_groupby_queries_explainable(self, tiny_registry, number):
        step = get_query(number).build_step(tiny_registry)
        report = FedexExplainer(FedexConfig(sample_size=2_000, seed=0)).explain(step)
        assert report.interestingness_scores
        assert report.explanations, f"query {number} produced no explanation"

    @pytest.mark.parametrize("number", [1, 2])
    def test_join_queries_explainable(self, tiny_registry, number):
        step = get_query(number).build_step(tiny_registry)
        report = FedexExplainer(
            FedexConfig(sample_size=2_000, top_k_columns=3, seed=0)
        ).explain(step)
        assert report.interestingness_scores
