"""Unit tests for the one-line explanation wrapper (ExplainableDataFrame)."""

from __future__ import annotations

import pytest

from repro import ExplainableDataFrame, FedexConfig, explain_dataframe
from repro.dataframe import Comparison
from repro.errors import ExplanationError


@pytest.fixture
def songs(spotify_small):
    return ExplainableDataFrame(spotify_small)


class TestOperations:
    def test_filter_records_step(self, songs):
        popular = songs.filter(Comparison("popularity", ">", 65), label="popular")
        assert len(popular.history) == 1
        assert popular.last_step.label == "popular"
        assert popular.shape[0] < songs.shape[0]

    def test_groupby_records_step(self, songs):
        by_decade = songs.groupby("decade", {"loudness": ["mean"]})
        assert by_decade.last_step.operation.kind == "groupby"
        assert "mean_loudness" in by_decade.column_names

    def test_join_records_step(self, products_and_sales_small):
        products, sales = products_and_sales_small
        joined = ExplainableDataFrame(products).join(sales, on="item")
        assert joined.last_step.operation.kind == "join"
        assert joined.last_step.is_multi_input

    def test_union_records_step(self, songs, spotify_small):
        merged = songs.union(spotify_small)
        assert merged.shape[0] == 2 * spotify_small.num_rows

    def test_history_accumulates(self, songs):
        result = songs.filter(Comparison("popularity", ">", 65)).groupby("decade")
        assert len(result.history) == 2

    def test_original_wrapper_is_untouched(self, songs):
        songs.filter(Comparison("popularity", ">", 65))
        assert songs.history == []

    def test_column_access_delegates(self, songs):
        assert songs["popularity"].is_numeric
        assert len(songs) == songs.frame.num_rows


class TestExplain:
    def test_explain_without_history_rejected(self, songs):
        with pytest.raises(ExplanationError):
            songs.explain()

    def test_explain_last_step(self, songs):
        popular = songs.filter(Comparison("popularity", ">", 65))
        report = popular.explain()
        assert report.explanations

    def test_explain_earlier_step(self, songs):
        result = songs.filter(Comparison("popularity", ">", 65)).groupby(
            "decade", {"loudness": ["mean"]}
        )
        first = result.explain(step_index=0)
        assert first.explanations
        assert all(c.measure_name == "exceptionality" for c in first.all_candidates)

    def test_explain_with_target_columns(self, songs):
        popular = songs.filter(Comparison("popularity", ">", 65))
        report = popular.explain(target_columns=["decade"])
        assert {e.attribute for e in report.explanations} == {"decade"}

    def test_explain_text_contains_caption(self, songs):
        popular = songs.filter(Comparison("popularity", ">", 65))
        assert "Explanation:" in popular.explain_text()

    def test_config_is_propagated(self, spotify_small):
        wrapped = ExplainableDataFrame(spotify_small, config=FedexConfig(top_k_explanations=1))
        popular = wrapped.filter(Comparison("popularity", ">", 65))
        assert len(popular.explain().explanations) == 1

    def test_explain_dataframe_helper(self, spotify_small):
        wrapped = explain_dataframe(spotify_small)
        assert isinstance(wrapped, ExplainableDataFrame)
