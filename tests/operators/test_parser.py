"""Unit tests for the SQL-ish query parser."""

from __future__ import annotations

import pytest

from repro.errors import QueryParseError
from repro.operators import Filter, GroupBy, Join, parse_query, parse_workload
from repro.workloads import WORKLOAD


class TestFilterQueries:
    def test_simple_filter(self):
        parsed = parse_query("SELECT * FROM spotify WHERE popularity > 65;")
        assert isinstance(parsed.operation, Filter)
        assert parsed.tables == ["spotify"]
        assert parsed.operation.predicate.describe() == "popularity > 65"

    def test_string_literal(self):
        parsed = parse_query('SELECT * FROM Bank WHERE Income_Category == "Less than $40K";')
        assert parsed.operation.predicate.value == "Less than $40K"

    def test_not_equal_operator(self):
        parsed = parse_query("SELECT * FROM Bank WHERE Attrition_Flag != 'Existing Customer';")
        assert parsed.operation.predicate.op == "!="

    def test_single_equals_normalised(self):
        parsed = parse_query("SELECT * FROM t WHERE x = 3;")
        assert parsed.operation.predicate.op == "=="
        assert parsed.operation.predicate.value == 3

    def test_conjunction(self):
        parsed = parse_query("SELECT * FROM t WHERE x > 3 AND y < 5;")
        assert len(parsed.operation.predicate.predicates) == 2

    def test_nested_query(self):
        parsed = parse_query(
            "SELECT * FROM [SELECT * FROM Bank WHERE Attrition_Flag != 'Existing Customer'] "
            "WHERE Total_Count_Change_Q4_vs_Q1 > 0.75;"
        )
        assert parsed.inner is not None
        assert isinstance(parsed.inner.operation, Filter)
        assert parsed.tables == ["Bank"]

    def test_missing_where_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT * FROM spotify;")


class TestJoinQueries:
    def test_inner_join(self):
        parsed = parse_query("SELECT * FROM products INNER JOIN sales ON products.item=sales.item;")
        assert isinstance(parsed.operation, Join)
        assert parsed.operation.on == ["item"]
        assert parsed.tables == ["products", "sales"]

    def test_mismatching_key_names_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT * FROM a INNER JOIN b ON a.x=b.y;")


class TestGroupByQueries:
    def test_aggregations_and_keys(self):
        parsed = parse_query(
            "SELECT mean(loudness), mean(danceability) FROM spotify GROUP BY year;"
        )
        operation = parsed.operation
        assert isinstance(operation, GroupBy)
        assert operation.keys == ["year"]
        assert operation.aggregations == {"loudness": ["mean"], "danceability": ["mean"]}

    def test_count_select(self):
        parsed = parse_query("SELECT count FROM Bank GROUP BY Marital_Status, Gender;")
        assert parsed.operation.include_count
        assert parsed.operation.keys == ["Marital_Status", "Gender"]

    def test_count_of_column(self):
        parsed = parse_query("SELECT count(item) FROM products_sales GROUP BY sales_vendor;")
        assert parsed.operation.include_count

    def test_avg_alias(self):
        parsed = parse_query("SELECT AVG(loudness) FROM spotify GROUP BY year;")
        assert parsed.operation.aggregations == {"loudness": ["mean"]}

    def test_where_clause_becomes_pre_filter(self):
        parsed = parse_query(
            "SELECT mean(loudness) FROM spotify WHERE year >= 1990 GROUP BY year;"
        )
        assert parsed.operation.pre_filter is not None
        assert parsed.operation.pre_filter.describe() == "year >= 1990"

    def test_multiple_aggregations_per_column(self):
        parsed = parse_query(
            "SELECT mean(popularity), max(popularity), min(popularity) FROM spotify GROUP BY year;"
        )
        assert parsed.operation.aggregations == {"popularity": ["mean", "max", "min"]}


class TestGeneral:
    def test_empty_query_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("   ")

    def test_non_select_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("DELETE FROM spotify;")

    def test_parse_workload_keeps_order(self):
        parsed = parse_workload([
            "SELECT * FROM spotify WHERE popularity > 65;",
            "SELECT count FROM Bank GROUP BY Gender;",
        ])
        assert isinstance(parsed[0].operation, Filter)
        assert isinstance(parsed[1].operation, GroupBy)

    def test_every_workload_sql_string_parses(self):
        """The published SQL of all 30 Appendix-A queries round-trips through the parser."""
        parsed_kinds = {}
        for query in WORKLOAD:
            if query.number == 3:
                continue  # the paper's text for query 3 is garbled (see workloads docstring)
            parsed = parse_query(query.sql)
            parsed_kinds[query.number] = parsed.kind
        assert parsed_kinds[6] == "filter"
        assert parsed_kinds[1] == "join"
        assert parsed_kinds[27] == "groupby"
        assert len(parsed_kinds) == 29
