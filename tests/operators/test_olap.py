"""Unit and integration tests for the OLAP extensions: pivot, diff, roll-up."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FedexConfig, FedexExplainer
from repro.dataframe import DataFrame
from repro.errors import OperationError
from repro.operators import Diff, ExploratoryStep, Pivot, RollUp


@pytest.fixture
def sales_frame() -> DataFrame:
    rng = np.random.default_rng(0)
    n = 400
    regions = np.asarray(["north", "south", "east", "west"], dtype=object)[rng.integers(0, 4, n)]
    categories = np.asarray(["beer", "wine", "rum"], dtype=object)[rng.integers(0, 3, n)]
    amount = rng.lognormal(3.0, 0.4, n) * (1.0 + 0.8 * (regions == "north"))
    return DataFrame({"region": regions, "category": categories, "amount": amount})


class TestPivot:
    def test_output_shape(self, sales_frame):
        result = Pivot("region", "category", "amount", "mean").apply([sales_frame])
        assert result.num_rows == 4
        assert set(result.column_names) == {"region", "beer_mean_amount", "wine_mean_amount",
                                            "rum_mean_amount"}

    def test_count_pivot(self, sales_frame):
        result = Pivot("region", "category").apply([sales_frame])
        total = sum(
            sum(v for v in result[name].tolist() if v == v)
            for name in result.column_names if name != "region"
        )
        assert total == sales_frame.num_rows

    def test_max_columns_cap(self, sales_frame):
        result = Pivot("region", "category", "amount", "mean", max_columns=2).apply([sales_frame])
        assert result.num_columns == 3  # region + 2 category columns

    def test_measure_required_for_mean(self):
        with pytest.raises(OperationError):
            Pivot("region", "category", None, "mean")

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(OperationError):
            Pivot("region", "category", "amount", "p95")

    def test_missing_column_rejected(self, sales_frame):
        with pytest.raises(OperationError):
            Pivot("region", "missing", "amount", "mean").apply([sales_frame])

    def test_default_measure_is_diversity(self):
        assert Pivot("region", "category").default_measure == "diversity"

    def test_pivot_step_is_explainable(self, sales_frame):
        step = ExploratoryStep([sales_frame], Pivot("region", "category", "amount", "mean"))
        report = FedexExplainer(FedexConfig(seed=0)).explain(step)
        assert report.interestingness_scores
        assert all(c.contribution > 0 for c in report.all_candidates)


class TestDiff:
    def test_delta_columns(self, sales_frame):
        north_boosted = sales_frame.copy()
        step = Diff("region", "amount", "mean")
        result = step.apply([sales_frame, north_boosted])
        assert set(result.column_names) == {"region", "mean_amount_before", "mean_amount_after",
                                            "delta_mean_amount"}
        assert all(abs(v) < 1e-9 for v in result["delta_mean_amount"].tolist())

    def test_detects_a_planted_change(self, sales_frame):
        boosted_rows = sales_frame.to_rows()
        for row in boosted_rows:
            if row["region"] == "west":
                row["amount"] *= 3.0
        boosted = DataFrame.from_rows(boosted_rows, column_order=sales_frame.column_names)
        result = Diff("region", "amount", "mean").apply([sales_frame, boosted])
        deltas = dict(zip(result["region"].tolist(), result["delta_mean_amount"].tolist()))
        assert deltas["west"] > max(abs(deltas[r]) for r in ("north", "south", "east")) * 2

    def test_requires_two_inputs(self, sales_frame):
        with pytest.raises(OperationError):
            Diff("region", "amount").apply([sales_frame])

    def test_missing_column_rejected(self, sales_frame):
        with pytest.raises(OperationError):
            Diff("region", "missing").apply([sales_frame, sales_frame])

    def test_diff_step_is_explainable(self, sales_frame):
        boosted_rows = sales_frame.to_rows()
        for row in boosted_rows:
            if row["region"] == "west":
                row["amount"] *= 3.0
        boosted = DataFrame.from_rows(boosted_rows, column_order=sales_frame.column_names)
        step = ExploratoryStep([sales_frame, boosted], Diff("region", "amount", "mean"))
        report = FedexExplainer(FedexConfig(seed=0)).explain(step)
        assert report.interestingness_scores.get("delta_mean_amount", 0.0) > 0


class TestRollUp:
    def test_rolls_away_last_key(self, sales_frame):
        operation = RollUp(["region", "category"], {"amount": ["mean"]})
        result = operation.apply([sales_frame])
        assert result.column_names[0] == "region"
        assert "category" not in result
        assert result.num_rows == 4

    def test_requires_two_keys(self):
        with pytest.raises(OperationError):
            RollUp(["region"])

    def test_describe_mentions_both_levels(self):
        operation = RollUp(["region", "category"], {"amount": ["mean"]})
        assert "region" in operation.describe() and "category" in operation.describe()

    def test_rollup_step_is_explainable(self, sales_frame):
        step = ExploratoryStep([sales_frame], RollUp(["region", "category"], {"amount": ["mean"]}))
        report = FedexExplainer(FedexConfig(seed=0)).explain(step)
        assert report.interestingness_scores
