"""Unit tests for ExploratoryStep."""

from __future__ import annotations

import pytest

from repro.dataframe import Comparison
from repro.errors import OperationError
from repro.operators import ExploratoryStep, Filter, GroupBy


class TestConstruction:
    def test_output_computed_when_missing(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        assert step.output.num_rows == 4

    def test_single_frame_input_is_wrapped(self, tiny_frame):
        step = ExploratoryStep(tiny_frame, Filter(Comparison("popularity", ">", 65)))
        assert step.primary_input is tiny_frame

    def test_explicit_output_is_kept(self, tiny_frame):
        output = tiny_frame.head(1)
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)), output=output)
        assert step.output is output

    def test_empty_inputs_rejected(self):
        with pytest.raises(OperationError):
            ExploratoryStep([], Filter(Comparison("x", ">", 1)))

    def test_arity_checked(self, tiny_frame):
        with pytest.raises(OperationError):
            ExploratoryStep([tiny_frame, tiny_frame], Filter(Comparison("popularity", ">", 65)))


class TestBehaviour:
    def test_rerun_on_new_inputs(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        rerun = step.rerun([tiny_frame.head(4)])
        assert rerun.num_rows == 0

    def test_with_inputs_replaced(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        replaced = step.with_inputs_replaced(0, tiny_frame.head(2))
        assert replaced[0].num_rows == 2
        assert step.inputs[0].num_rows == tiny_frame.num_rows

    def test_with_inputs_replaced_bad_index(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        with pytest.raises(OperationError):
            step.with_inputs_replaced(3, tiny_frame)

    def test_is_multi_input(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], GroupBy("decade"))
        assert not step.is_multi_input

    def test_describe_includes_label_and_shapes(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], GroupBy("decade"), label="Q24")
        text = step.describe()
        assert "Q24" in text and "8x4" in text
