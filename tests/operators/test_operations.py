"""Unit tests for EDA operation specifications."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import Comparison, DataFrame
from repro.errors import OperationError
from repro.operators import Filter, GroupBy, Join, Project, Union
from repro.operators.operations import MEASURE_DIVERSITY, MEASURE_EXCEPTIONALITY


class TestFilter:
    def test_apply(self, tiny_frame):
        result = Filter(Comparison("popularity", ">", 65)).apply([tiny_frame])
        assert result.num_rows == 4

    def test_default_measure(self):
        assert Filter(Comparison("x", ">", 1)).default_measure == MEASURE_EXCEPTIONALITY

    def test_arity_enforced(self, tiny_frame):
        with pytest.raises(OperationError):
            Filter(Comparison("popularity", ">", 65)).apply([tiny_frame, tiny_frame])

    def test_describe(self):
        assert "popularity > 65" in Filter(Comparison("popularity", ">", 65)).describe()


class TestGroupBy:
    def test_apply_with_aggregations(self, tiny_frame):
        operation = GroupBy("decade", {"loudness": ["mean"]})
        result = operation.apply([tiny_frame])
        assert result.num_rows == 3
        assert "mean_loudness" in result

    def test_pre_filter_applied_before_grouping(self, tiny_frame):
        operation = GroupBy("year", {"loudness": ["mean"]},
                            pre_filter=Comparison("year", ">=", 2010))
        result = operation.apply([tiny_frame])
        assert result.num_rows == 4

    def test_count_only(self, tiny_frame):
        operation = GroupBy("decade")
        result = operation.apply([tiny_frame])
        assert "count" in result

    def test_default_measure(self):
        assert GroupBy("decade").default_measure == MEASURE_DIVERSITY

    def test_aggregated_output_columns(self):
        operation = GroupBy("decade", {"loudness": ["mean", "max"]}, include_count=True)
        assert operation.aggregated_output_columns() == ["mean_loudness", "max_loudness", "count"]

    def test_empty_keys_rejected(self):
        with pytest.raises(OperationError):
            GroupBy([])

    def test_describe_mentions_keys_and_aggregations(self):
        operation = GroupBy(["decade"], {"loudness": ["mean"]})
        text = operation.describe()
        assert "decade" in text and "mean(loudness)" in text


class TestJoinAndUnion:
    def test_join_apply(self):
        left = DataFrame({"k": np.asarray([1.0, 2.0]), "x": [1.0, 2.0]})
        right = DataFrame({"k": np.asarray([2.0, 2.0]), "y": [5.0, 6.0]})
        result = Join("k").apply([left, right])
        assert result.num_rows == 2

    def test_join_arity(self):
        assert Join("k").arity == 2

    def test_join_requires_key(self):
        with pytest.raises(OperationError):
            Join([])

    def test_union_apply(self, tiny_frame):
        result = Union().apply([tiny_frame, tiny_frame])
        assert result.num_rows == 2 * tiny_frame.num_rows

    def test_union_requires_two_inputs(self):
        with pytest.raises(OperationError):
            Union(n_inputs=1)

    def test_union_default_measure(self):
        assert Union().default_measure == MEASURE_EXCEPTIONALITY

    def test_three_way_union(self, tiny_frame):
        result = Union(n_inputs=3).apply([tiny_frame, tiny_frame, tiny_frame])
        assert result.num_rows == 3 * tiny_frame.num_rows


class TestProject:
    def test_apply_keeps_existing_columns(self, tiny_frame):
        result = Project(["decade", "missing"]).apply([tiny_frame])
        assert result.column_names == ["decade"]

    def test_requires_columns(self):
        with pytest.raises(OperationError):
            Project([])
