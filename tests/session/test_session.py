"""Tests of the exploration-session service layer.

Two families: behavioural equivalence (explaining through a session yields
the same report contents as the stateless engine, cold or warm) and state
reuse (overlapping steps share partitions/structure, wrappers share
engines).
"""

from __future__ import annotations

import pytest

from repro import ExplainableDataFrame, FedexExplainer
from repro.core import FedexConfig
from repro.dataframe import Comparison
from repro.errors import ExplanationError
from repro.operators import ExploratoryStep, Filter, GroupBy
from repro.session import ExplanationSession, SessionCache


def _assert_same_report(first, second, tol=0.0):
    assert first.skyline_keys() == second.skyline_keys()
    first_scores = {
        c.key(): (c.contribution, c.standardized_contribution) for c in first.all_candidates
    }
    second_scores = {
        c.key(): (c.contribution, c.standardized_contribution) for c in second.all_candidates
    }
    assert set(first_scores) == set(second_scores)
    for key, (raw, std) in first_scores.items():
        raw_s, std_s = second_scores[key]
        assert raw == pytest.approx(raw_s, abs=tol)
        assert std == pytest.approx(std_s, abs=tol)


class TestSessionEquivalence:
    def test_session_matches_stateless_engine(self, spotify_small):
        step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
        stateless = FedexExplainer(FedexConfig()).explain(step)
        session = ExplanationSession()
        _assert_same_report(stateless, session.explain(step))

    def test_overlapping_steps_match_stateless_engine(self, spotify_small):
        """Warm structure (partitions, argsorts) must not change any score."""
        session = ExplanationSession()
        thresholds = (60, 65, 70)
        for threshold in thresholds:
            step = ExploratoryStep(
                [spotify_small], Filter(Comparison("popularity", ">", threshold))
            )
            stateless = FedexExplainer(FedexConfig()).explain(step)
            _assert_same_report(stateless, session.explain(step))
        assert session.stats.partition_hits > 0

    def test_groupby_structure_reused_across_aggregations(self, spotify_small):
        """Re-aggregating the same grouping reuses the per-group row assignment."""
        session = ExplanationSession()
        first = ExploratoryStep([spotify_small], GroupBy("decade", {"loudness": ["mean"]}))
        second = ExploratoryStep([spotify_small], GroupBy("decade", {"popularity": ["sum"]}))
        session.explain(first)
        baseline_hits = session.stats.structure_hits
        stateless = FedexExplainer(FedexConfig()).explain(second)
        _assert_same_report(stateless, session.explain(second))
        assert session.stats.structure_hits > baseline_hits

    def test_session_with_parallel_backend(self, spotify_small):
        step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
        serial = FedexExplainer(FedexConfig()).explain(step)
        session = ExplanationSession(config=FedexConfig(backend="parallel", workers=2))
        _assert_same_report(serial, session.explain(step))

    def test_history_records_every_request(self, spotify_small):
        session = ExplanationSession()
        step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
        session.explain(step)
        session.explain(step)
        assert len(session.history) == 2

    def test_history_is_bounded(self, spotify_small):
        session = ExplanationSession(max_history=2)
        step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
        for _ in range(5):
            session.explain(step)
        assert len(session.history) == 2


class TestSessionExplainable:
    def test_open_routes_explains_through_session(self, spotify_small):
        session = ExplanationSession()
        songs = session.open(spotify_small)
        popular = songs.filter(Comparison("popularity", ">", 65))
        first = popular.explain()
        second = popular.explain()
        assert second is first
        assert session.stats.report_hits == 1

    def test_derived_wrappers_keep_the_session(self, spotify_small):
        session = ExplanationSession()
        songs = session.open(spotify_small)
        recent = songs.filter(Comparison("year", ">=", 1990))
        popular = recent.filter(Comparison("popularity", ">", 65))
        popular.explain()
        popular.explain()
        assert session.stats.report_hits == 1

    def test_open_without_steps_still_raises(self, spotify_small):
        session = ExplanationSession()
        songs = session.open(spotify_small)
        with pytest.raises(ExplanationError):
            songs.explain()

    def test_plain_wrapper_reuses_one_explainer(self, spotify_small):
        """Without a session, repeated explains share a FedexExplainer."""
        songs = ExplainableDataFrame(spotify_small)
        popular = songs.filter(Comparison("popularity", ">", 65))
        popular.explain()
        assert len(popular._explainers) == 1
        explainer = next(iter(popular._explainers.values()))
        popular.explain()
        assert next(iter(popular._explainers.values())) is explainer

    def test_derived_wrappers_share_the_explainer_pool(self, spotify_small):
        songs = ExplainableDataFrame(spotify_small)
        recent = songs.filter(Comparison("year", ">=", 1990))
        popular = recent.filter(Comparison("popularity", ">", 65))
        recent.explain()
        popular.explain()
        assert popular._explainers is songs._explainers
        assert len(popular._explainers) == 1

    def test_explain_with_target_columns_still_works(self, spotify_small):
        session = ExplanationSession()
        songs = session.open(spotify_small)
        popular = songs.filter(Comparison("popularity", ">", 65))
        report = popular.explain(target_columns=["popularity"])
        assert report.selected_columns == ["popularity"]


class TestLossyDescriptions:
    def test_row_index_predicates_never_collide(self, spotify_small):
        """RowIndexPredicate.describe() summarises; the cache must not key on it."""
        from repro.dataframe.predicates import RowIndexPredicate

        session = ExplanationSession()
        first = ExploratoryStep([spotify_small], Filter(RowIndexPredicate(range(0, 100))))
        second = ExploratoryStep([spotify_small], Filter(RowIndexPredicate(range(100, 200))))
        for step in (first, second):
            stateless = FedexExplainer(FedexConfig()).explain(step)
            _assert_same_report(stateless, session.explain(step))

    def test_row_index_pre_filters_never_collide(self, spotify_small):
        from repro.dataframe.predicates import RowIndexPredicate

        session = ExplanationSession()
        for rows in (range(0, 2000), range(2000, 4000)):
            step = ExploratoryStep([spotify_small], GroupBy(
                "decade", {"loudness": ["mean"]}, pre_filter=RowIndexPredicate(rows)
            ))
            stateless = FedexExplainer(FedexConfig()).explain(step)
            _assert_same_report(stateless, session.explain(step))


class TestScoreCache:
    """Phase-1 interestingness scores are memoized by content, not by config."""

    def test_scores_reused_across_different_configs(self, spotify_small):
        """A config change misses the report memo but hits the score cache."""
        session = ExplanationSession()
        step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
        session.explain(step)
        assert session.stats.score_misses > 0
        misses_after_cold = session.stats.score_misses
        report = session.explain(step, config=FedexConfig(top_k_explanations=1))
        assert session.stats.report_hits == 0  # different config signature
        assert session.stats.score_hits > 0
        assert session.stats.score_misses == misses_after_cold
        stateless = FedexExplainer(FedexConfig(top_k_explanations=1)).explain(step)
        assert report.interestingness_scores == stateless.interestingness_scores
        _assert_same_report(stateless, report)

    def test_scores_keyed_by_measure(self, spotify_small):
        session = ExplanationSession()
        step = ExploratoryStep([spotify_small], GroupBy("decade", {"loudness": ["mean"]}))
        session.explain(step)
        misses = session.stats.score_misses
        session.explain(step, measure="exceptionality")
        assert session.stats.score_misses > misses  # different measure, new keys

    def test_mutated_frame_misses_score_cache(self, spotify_small):
        session = ExplanationSession()
        mutable = spotify_small.copy()
        step = ExploratoryStep([mutable], Filter(Comparison("popularity", ">", 65)))
        session.explain(step)
        misses = session.stats.score_misses
        mutable["loudness"].values[0] += 1.0
        session.explain(ExploratoryStep([mutable], Filter(Comparison("popularity", ">", 65))),
                        config=FedexConfig(top_k_explanations=1))
        assert session.stats.score_hits == 0
        assert session.stats.score_misses > misses

    def test_sampling_config_participates_in_the_key(self, spotify_small):
        session = ExplanationSession()
        step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
        session.explain(step, config=FedexConfig(sample_size=1_000, seed=1))
        misses = session.stats.score_misses
        session.explain(step, config=FedexConfig(sample_size=1_000, seed=2))
        assert session.stats.score_hits == 0  # different seed -> different sample
        assert session.stats.score_misses > misses

    def test_custom_measures_never_score_cached(self, spotify_small):
        """A FunctionMeasure's identity is not content-addressable; skip caching."""
        from repro.core import FunctionMeasure, default_registry

        registry = default_registry()
        registry.register(FunctionMeasure("constant", lambda i, s, o, a: 1.0))
        session = ExplanationSession(registry=registry)
        step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
        session.explain(step, measure="constant")
        assert session.stats.score_misses == 0
        assert session.stats.score_hits == 0

    def test_overlapping_target_columns_share_scores(self, spotify_small):
        """Per-attribute keys: a narrowed column set reuses the overlap."""
        session = ExplanationSession()
        step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
        session.explain(step, config=FedexConfig(target_columns=["popularity", "loudness"]))
        hits = session.stats.score_hits
        session.explain(step, config=FedexConfig(target_columns=["popularity"]))
        assert session.stats.score_hits > hits


class TestStructureToggle:
    def test_cache_structures_false_keeps_engine_stateless(self, spotify_small):
        session = ExplanationSession(
            config=FedexConfig(cache_reports=False, cache_structures=False)
        )
        step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
        stateless = FedexExplainer(FedexConfig()).explain(step)
        _assert_same_report(stateless, session.explain(step))
        session.explain(step)
        assert session.stats.partition_hits == 0
        assert session.stats.partition_misses == 0
        assert session.stats.columns_adopted == 0

    def test_shared_cache_across_sessions(self, spotify_small):
        cache = SessionCache()
        step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
        first = ExplanationSession(cache=cache)
        second = ExplanationSession(cache=cache)
        report = first.explain(step)
        assert second.explain(step) is report

    def test_shared_cache_never_crosses_environments(self, spotify_small):
        """A custom-registry session's reports must not serve a default one."""
        from repro.core import default_registry

        cache = SessionCache()
        step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
        custom = ExplanationSession(registry=default_registry(), cache=cache)
        default = ExplanationSession(cache=cache)
        report = custom.explain(step)
        assert default.explain(step) is not report
        # Two custom-environment sessions do not share either (their
        # registries cannot be compared by content).
        other_custom = ExplanationSession(registry=default_registry(), cache=cache)
        assert other_custom.explain(step) is not report
