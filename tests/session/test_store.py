"""Tests of the shared byte-budgeted cache store.

Four families: byte accounting/eviction (the budget is an invariant, not a
hint), per-tenant quotas (one tenant cannot evict the world), persistence
(a snapshot round-trip must produce warm hits), and thread-safety (many
tenants hammering one store concurrently, checked against single-threaded
results).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import FedexConfig, FedexExplainer
from repro.dataframe import Column, Comparison
from repro.operators import ExploratoryStep, Filter
from repro.session import (
    CacheStore,
    ExplanationSession,
    SessionCache,
    measured_bytes,
)


# ------------------------------------------------------------------ measuring
class TestMeasuredBytes:
    def test_numpy_arrays_priced_at_nbytes(self):
        small = measured_bytes(np.zeros(10))
        large = measured_bytes(np.zeros(10_000))
        assert large - small >= 9_000 * 8

    def test_nested_containers_count_leaves(self):
        payload = {"a": [np.zeros(1_000)], "b": (np.zeros(1_000),)}
        assert measured_bytes(payload) >= 2 * 8_000

    def test_shared_objects_counted_once(self):
        array = np.zeros(10_000)
        assert measured_bytes([array, array]) < 2 * measured_bytes(array)

    def test_column_counts_values_and_cached_structure(self):
        column = Column("x", np.arange(5_000, dtype=float))
        bare = measured_bytes(column)
        column.sorted_order()
        with_structure = measured_bytes(column)
        assert with_structure >= bare + 5_000 * 8

    def test_cycles_terminate(self):
        payload = {}
        payload["self"] = payload
        assert measured_bytes(payload) > 0


# ---------------------------------------------------------------- byte budget
class TestByteBudget:
    def test_usage_tracks_inserts_and_evictions(self):
        store = CacheStore(budget_bytes=100_000)
        store.put("structures", "a", np.zeros(5_000), nbytes=40_000)
        store.put("structures", "b", np.zeros(5_000), nbytes=40_000)
        assert store.usage_bytes == 80_000
        store.put("structures", "c", np.zeros(5_000), nbytes=40_000)
        assert store.usage_bytes <= 100_000
        assert store.metrics.evictions == 1
        assert store.get("structures", "a") is None  # LRU victim

    def test_read_bumps_recency(self):
        store = CacheStore(budget_bytes=100_000)
        store.put("structures", "a", "va", nbytes=40_000)
        store.put("structures", "b", "vb", nbytes=40_000)
        assert store.get("structures", "a") == "va"  # a is now most recent
        store.put("structures", "c", "vc", nbytes=40_000)
        assert store.get("structures", "a") == "va"
        assert store.get("structures", "b") is None

    def test_replacement_releases_old_bytes(self):
        store = CacheStore(budget_bytes=100_000)
        store.put("reports", "k", "old", nbytes=60_000)
        store.put("reports", "k", "new", nbytes=10_000)
        assert store.usage_bytes == 10_000
        assert store.get("reports", "k") == "new"

    def test_oversize_value_rejected_not_stored(self):
        store = CacheStore(budget_bytes=1_000)
        assert store.put("reports", "big", "value", nbytes=5_000) is False
        assert store.usage_bytes == 0
        assert store.metrics.oversize_rejections == 1
        assert store.get("reports", "big") is None

    def test_eviction_is_global_across_layers(self):
        store = CacheStore(budget_bytes=100_000)
        store.put("reports", "r", "report", nbytes=60_000)
        store.put("columns", "c", "column", nbytes=60_000)
        assert store.get("reports", "r") is None
        assert store.get("columns", "c") == "column"

    def test_budget_never_exceeded_under_many_inserts(self):
        store = CacheStore(budget_bytes=50_000)
        rng = np.random.default_rng(0)
        for index in range(200):
            store.put("partitions", index, "v", nbytes=int(rng.integers(100, 5_000)))
            assert store.usage_bytes <= 50_000


# -------------------------------------------------------------- tenant quotas
class TestTenantQuotas:
    def test_tenant_overflow_evicts_own_entries_first(self):
        store = CacheStore(budget_bytes=1_000_000, tenant_quota_bytes=50_000)
        store.put("reports", "other", "value", tenant="bob", nbytes=30_000)
        for index in range(5):
            store.put("reports", f"alice-{index}", "value", tenant="alice", nbytes=20_000)
        assert store.tenant_usage("alice") <= 50_000
        # Bob's entry survives even though it is the oldest in the store.
        assert store.get("reports", "other") == "value"
        assert store.metrics.quota_evictions >= 3

    def test_quota_mapping_per_tenant(self):
        store = CacheStore(budget_bytes=1_000_000,
                           tenant_quota_bytes={"small": 10_000})
        store.put("reports", "s1", "v", tenant="small", nbytes=8_000)
        store.put("reports", "s2", "v", tenant="small", nbytes=8_000)
        assert store.tenant_usage("small") <= 10_000
        # Unlisted tenants are bounded only by the global budget.
        store.put("reports", "b1", "v", tenant="big", nbytes=500_000)
        assert store.tenant_usage("big") == 500_000

    def test_value_larger_than_quota_rejected(self):
        store = CacheStore(budget_bytes=1_000_000, tenant_quota_bytes=10_000)
        assert store.put("reports", "k", "v", tenant="alice", nbytes=20_000) is False
        assert store.tenant_usage("alice") == 0

    def test_cross_tenant_reads_are_shared(self):
        """Quotas bound what a tenant pins, not what it can read."""
        store = CacheStore(budget_bytes=1_000_000, tenant_quota_bytes=50_000)
        store.put("reports", "shared", "value", tenant="alice", nbytes=1_000)
        assert store.get("reports", "shared") == "value"  # any caller


# ----------------------------------------------------- tenant recency index
class TestTenantRecencyIndex:
    """The per-tenant LRU index behind O(evicted) quota eviction.

    Quota eviction used to scan the whole store for the tenant's oldest
    entry; it now reads the head of the tenant's own recency index.  The
    index must therefore mirror the global LRU order exactly — including
    read touches, replacements, and cross-tenant replacement — or quota
    eviction would pick the wrong victim.
    """

    def test_quota_eviction_respects_read_recency(self):
        store = CacheStore(budget_bytes=1_000_000, tenant_quota_bytes=50_000)
        store.put("reports", "a", "va", tenant="alice", nbytes=20_000)
        store.put("reports", "b", "vb", tenant="alice", nbytes=20_000)
        assert store.get("reports", "a") == "va"  # a is now most recent
        store.put("reports", "c", "vc", tenant="alice", nbytes=20_000)
        assert store.get("reports", "b") is None  # b was the LRU victim
        assert store.get("reports", "a") == "va"
        assert store.get("reports", "c") == "vc"
        assert store.tenant_usage("alice") <= 50_000

    def test_index_tracks_insert_replace_and_clear(self):
        store = CacheStore(budget_bytes=1_000_000)
        store.put("reports", "k1", "v", tenant="alice", nbytes=10)
        store.put("reports", "k2", "v", tenant="bob", nbytes=10)
        assert list(store._tenant_lru["alice"]) == [("reports", "k1")]
        assert list(store._tenant_lru["bob"]) == [("reports", "k2")]
        # Replacement keeps exactly one index entry (no duplicates, no leak).
        store.put("reports", "k1", "v2", tenant="alice", nbytes=10)
        assert list(store._tenant_lru["alice"]) == [("reports", "k1")]
        store.clear()
        assert store._tenant_lru == {}

    def test_cross_tenant_replacement_moves_the_charge(self):
        store = CacheStore(budget_bytes=1_000_000)
        store.put("reports", "k", "v", tenant="alice", nbytes=10)
        store.put("reports", "k", "v2", tenant="bob", nbytes=10)
        # Alice's (now empty) index is dropped, bob's gained the key.
        assert "alice" not in store._tenant_lru
        assert list(store._tenant_lru["bob"]) == [("reports", "k")]
        assert store.tenant_usage("alice") == 0

    def test_index_consistent_under_concurrent_storm(self):
        """After a mixed get/put storm, index and entry map agree exactly."""
        store = CacheStore(budget_bytes=200_000, tenant_quota_bytes=60_000)
        errors = []
        barrier = threading.Barrier(4)

        def tenant_worker(tenant: str) -> None:
            rng = np.random.default_rng(hash(tenant) % (2**32))
            try:
                barrier.wait()
                for round_index in range(300):
                    key = int(rng.integers(0, 40))
                    if store.get("reports", key) is None:
                        store.put("reports", key, f"{tenant}-{round_index}",
                                  tenant=tenant, nbytes=int(rng.integers(500, 4_000)))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=tenant_worker, args=(f"tenant-{i}",))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        with store._lock.write():
            store._drain_touches_locked()
            derived = {}
            for composite, entry in store._entries.items():
                derived.setdefault(entry.tenant, []).append(composite)
            indexed = {tenant: list(keys)
                       for tenant, keys in store._tenant_lru.items()}
        assert indexed == derived


# ---------------------------------------------------------------- persistence
class TestPersistence:
    def test_snapshot_round_trip(self, tmp_path):
        store = CacheStore()
        store.put("reports", ("k", 1), {"payload": np.arange(10)}, tenant="alice")
        store.put("columns", "fp", Column("x", np.arange(5, dtype=float)))
        path = str(tmp_path / "cache.snapshot")
        assert store.save(path) == 2
        loaded = CacheStore.load(path)
        assert np.array_equal(loaded.get("reports", ("k", 1))["payload"], np.arange(10))
        assert isinstance(loaded.get("columns", "fp"), Column)
        assert loaded.tenant_usage("alice") > 0

    def test_unpicklable_entries_skipped(self, tmp_path):
        store = CacheStore()
        store.put("reports", "good", "value")
        store.put("structures", "bad", lambda: None)  # lambdas cannot pickle
        path = str(tmp_path / "cache.snapshot")
        assert store.save(path) == 1
        loaded = CacheStore.load(path)
        assert loaded.get("reports", "good") == "value"

    def test_load_trims_to_new_budget_keeping_recent(self, tmp_path):
        store = CacheStore(budget_bytes=1_000_000)
        store.put("reports", "old", "v", nbytes=40_000)
        store.put("reports", "new", "v", nbytes=40_000)
        path = str(tmp_path / "cache.snapshot")
        store.save(path)
        loaded = CacheStore.load(path, budget_bytes=50_000)
        assert loaded.get("reports", "new") == "v"
        assert loaded.get("reports", "old") is None

    def test_session_warm_hits_after_load(self, spotify_small, tmp_path):
        """The acceptance contract: a loaded snapshot serves report hits."""
        step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
        warm_store = CacheStore()
        first = ExplanationSession(store=warm_store, tenant="alice")
        report = first.explain(step)
        path = str(tmp_path / "cache.snapshot")
        assert warm_store.save(path) > 0

        loaded = CacheStore.load(path)
        revived = ExplanationSession(store=loaded, tenant="alice")
        rebuilt_step = ExploratoryStep(
            [spotify_small.copy()], Filter(Comparison("popularity", ">", 65))
        )
        served = revived.explain(rebuilt_step)
        assert revived.stats.report_hits == 1
        assert served.skyline_keys() == report.skyline_keys()

    def test_corrupt_snapshot_rejected(self, tmp_path):
        path = tmp_path / "cache.snapshot"
        import pickle

        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(ValueError):
            CacheStore.load(str(path))


# ----------------------------------------------------------------- concurrency
class TestConcurrentAccess:
    def test_multithreaded_tenants_hammering_one_store(self):
        """Mixed get/put storm: no exception, invariants hold throughout."""
        store = CacheStore(budget_bytes=200_000, tenant_quota_bytes=80_000)
        errors = []
        barrier = threading.Barrier(6)

        def tenant_worker(tenant: str) -> None:
            rng = np.random.default_rng(hash(tenant) % (2**32))
            try:
                barrier.wait()
                for round_index in range(300):
                    key = int(rng.integers(0, 40))
                    value = store.get("reports", key)
                    if value is None:
                        store.put("reports", key, f"{tenant}-{round_index}",
                                  tenant=tenant, nbytes=int(rng.integers(500, 4_000)))
                    if round_index % 50 == 0:
                        assert store.usage_bytes <= 200_000
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=tenant_worker, args=(f"tenant-{i}",))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.usage_bytes <= 200_000
        for tenant in store.tenants():
            assert store.tenant_usage(tenant) <= 80_000

    def test_singleflight_coalesces_concurrent_misses(self):
        store = CacheStore()
        builds = []
        release = threading.Event()
        started = threading.Event()

        def slow_build():
            builds.append(threading.get_ident())
            started.set()
            release.wait(timeout=5)
            return "result"

        results = []

        def caller():
            results.append(store.singleflight("reports", "key", slow_build))

        threads = [threading.Thread(target=caller) for _ in range(4)]
        threads[0].start()
        started.wait(timeout=5)
        for thread in threads[1:]:
            thread.start()
        release.set()
        for thread in threads:
            thread.join()
        assert results == ["result"] * 4
        assert len(builds) == 1
        assert store.metrics.coalesced_requests == 3

    def test_singleflight_leader_failure_unblocks_followers(self):
        store = CacheStore()
        attempts = []
        started = threading.Event()
        release = threading.Event()

        def failing_build():
            attempts.append("leader")
            started.set()
            release.wait(timeout=5)
            raise RuntimeError("leader died")

        def follower_build():
            attempts.append("follower")
            return "fallback"

        outcome = {}

        def leader():
            try:
                store.singleflight("reports", "key", failing_build)
            except RuntimeError:
                outcome["leader"] = "raised"

        def follower():
            outcome["follower"] = store.singleflight("reports", "key", follower_build)

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        started.wait(timeout=5)
        follower_thread = threading.Thread(target=follower)
        follower_thread.start()
        release.set()
        leader_thread.join()
        follower_thread.join()
        assert outcome == {"leader": "raised", "follower": "fallback"}

    def test_concurrent_sessions_share_and_agree(self, spotify_small):
        """Tenants explaining the same steps concurrently get identical reports."""
        store = CacheStore()
        thresholds = (60, 65, 70, 75)
        reference = {
            threshold: FedexExplainer(FedexConfig()).explain(
                ExploratoryStep([spotify_small],
                                Filter(Comparison("popularity", ">", threshold)))
            )
            for threshold in thresholds
        }
        failures = []

        def tenant_worker(tenant: str) -> None:
            session = ExplanationSession(store=store, tenant=tenant)
            try:
                for threshold in thresholds:
                    step = ExploratoryStep(
                        [spotify_small], Filter(Comparison("popularity", ">", threshold))
                    )
                    report = session.explain(step)
                    if report.skyline_keys() != reference[threshold].skyline_keys():
                        failures.append((tenant, threshold))
            except Exception as exc:  # pragma: no cover - failure path
                failures.append((tenant, exc))

        threads = [threading.Thread(target=tenant_worker, args=(f"tenant-{i}",))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


class TestSessionViewOverSharedStore:
    def test_views_share_entries_but_not_stats(self, spotify_small):
        store = CacheStore()
        step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
        alice = ExplanationSession(store=store, tenant="alice")
        bob = ExplanationSession(store=store, tenant="bob")
        report = alice.explain(step)
        assert bob.explain(step) is report
        assert alice.stats.report_misses == 1 and alice.stats.report_hits == 0
        assert bob.stats.report_hits == 1 and bob.stats.report_misses == 0

    def test_inserts_charged_to_the_inserting_tenant(self, spotify_small):
        store = CacheStore()
        step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
        alice = ExplanationSession(store=store, tenant="alice")
        alice.explain(step)
        assert store.tenant_usage("alice") > 0
        assert store.tenant_usage("bob") == 0

    def test_private_store_keeps_entry_caps(self):
        cache = SessionCache(max_reports=2)
        for index in range(4):
            cache.store_report((index,), f"report-{index}")
        assert cache.store.layer_count("reports") == 2
