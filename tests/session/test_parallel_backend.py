"""Tests of the parallel contribution backend.

The contract: for any worker count, :class:`ParallelBackend` produces the
same candidate pools, skylines, and scores as the serial incremental
backend — grid sharding may reorder *execution*, never results.  (The full
30-query determinism sweep lives in ``benchmarks/test_backend_equivalence``;
these tests cover the mechanism on small steps.)
"""

from __future__ import annotations

import pytest

from repro.core import (
    ContributionCalculator,
    ExceptionalityMeasure,
    FedexConfig,
    FedexExplainer,
    FrequencyPartitioner,
    NumericBinningPartitioner,
    ParallelBackend,
)
from repro.dataframe import Comparison
from repro.errors import ExplanationError
from repro.operators import ExploratoryStep, Filter, GroupBy, Join, Union


def _steps(spotify_small, products_and_sales_small):
    products, sales = products_and_sales_small
    yield ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
    yield ExploratoryStep([spotify_small], GroupBy(
        "decade", {"loudness": ["mean", "median", "std"]}, include_count=True
    ))
    yield ExploratoryStep([products, sales], Join("item"))
    yield ExploratoryStep([
        spotify_small.filter(Comparison("year", "<", 1990)),
        spotify_small.filter(Comparison("year", ">=", 1990)),
    ], Union())


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_matches_serial_incremental(workers, spotify_small,
                                             products_and_sales_small):
    for step in _steps(spotify_small, products_and_sales_small):
        serial = FedexExplainer(FedexConfig(backend="incremental")).explain(step)
        parallel = FedexExplainer(
            FedexConfig(backend="parallel", workers=workers)
        ).explain(step)
        assert serial.skyline_keys() == parallel.skyline_keys()
        serial_scores = {
            c.key(): (c.contribution, c.standardized_contribution)
            for c in serial.all_candidates
        }
        parallel_scores = {
            c.key(): (c.contribution, c.standardized_contribution)
            for c in parallel.all_candidates
        }
        assert set(serial_scores) == set(parallel_scores)
        for key, (raw, std) in serial_scores.items():
            raw_p, std_p = parallel_scores[key]
            assert raw == pytest.approx(raw_p, abs=1e-9)
            assert std == pytest.approx(std_p, abs=1e-9)


def test_prefetch_computes_grid_concurrently(spotify_small):
    """After prefetch, per-pair calls consume futures instead of recomputing."""
    step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
    measure = ExceptionalityMeasure()
    backend = ParallelBackend(step, measure, workers=2)
    calculator = ContributionCalculator(step, measure, backend=backend)
    partitions = [
        FrequencyPartitioner().partition(spotify_small, "decade", 5),
        NumericBinningPartitioner().partition(spotify_small, "popularity", 5),
    ]
    grid = [(partition, partition.source_attribute) for partition in partitions]
    calculator.prefetch(grid)
    assert len(backend._futures) == len(grid)
    for partition, attribute in grid:
        contributions = calculator.partition_contributions(partition, attribute)
        assert len(contributions) == len(partition.sets)
    assert not backend._futures


def test_parallel_without_prefetch_still_works(spotify_small):
    """Direct per-pair use (no grid announcement) degrades to the inner backend."""
    step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
    measure = ExceptionalityMeasure()
    backend = ParallelBackend(step, measure, workers=2)
    calculator = ContributionCalculator(step, measure, backend=backend)
    partition = FrequencyPartitioner().partition(spotify_small, "decade", 5)
    serial = ContributionCalculator(step, measure, backend="incremental")
    assert calculator.partition_contributions(partition, "decade") == pytest.approx(
        serial.partition_contributions(partition, "decade"), abs=1e-12
    )


def test_prefetched_futures_pin_their_partitions(spotify_small):
    """Entries keep the partition alive so a reused id cannot hit a stale future."""
    import gc

    step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
    measure = ExceptionalityMeasure()
    backend = ParallelBackend(step, measure, workers=2)
    calculator = ContributionCalculator(step, measure, backend=backend)
    partition = FrequencyPartitioner().partition(spotify_small, "decade", 5)
    calculator.prefetch([(partition, "decade")])
    pinned_id = id(partition)
    del partition
    gc.collect()
    # The future's entry still holds the partition, so its id stays reserved
    # and no new object can collide with the pending entry.
    entry = backend._futures[(pinned_id, "decade")]
    assert id(entry[0]) == pinned_id


def test_worker_count_defaults_and_validation():
    assert ParallelBackend(None, None, workers=None).workers >= 1
    with pytest.raises(ExplanationError):
        FedexConfig(workers=0)
    assert FedexConfig(workers=3).workers == 3


# ------------------------------------------------------------ shard batching
def _wide_grid(frame, n=7):
    partitions = [
        FrequencyPartitioner().partition(frame, "decade", 2 + index % 5)
        for index in range(n)
    ]
    return [(partition, partition.source_attribute) for partition in partitions]


@pytest.mark.parametrize("shard_batch", [1, 3, None, 7],
                         ids=["batch1", "batch3", "auto", "whole-grid"])
def test_batched_dispatch_matches_serial(spotify_small, shard_batch):
    """Any batch size walks the same pairs in the same order: identical floats."""
    step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
    measure = ExceptionalityMeasure()
    grid = _wide_grid(spotify_small, n=7)
    serial = ContributionCalculator(step, measure, backend="incremental")
    expected = [serial.partition_contributions(partition, attribute)
                for partition, attribute in grid]
    backend = ParallelBackend(step, measure, workers=2, shard_batch=shard_batch)
    calculator = ContributionCalculator(step, measure, backend=backend)
    calculator.prefetch(grid)
    results = [calculator.partition_contributions(partition, attribute)
               for partition, attribute in grid]
    assert results == expected


def test_batches_submitted_counter(spotify_small):
    import math

    step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
    measure = ExceptionalityMeasure()
    grid = _wide_grid(spotify_small, n=7)
    batched = ParallelBackend(step, measure, workers=2, shard_batch=3)
    ContributionCalculator(step, measure, backend=batched).prefetch(grid)
    assert batched.batches_submitted == math.ceil(len(grid) / 3)
    per_pair = ParallelBackend(step, measure, workers=2, shard_batch=1)
    ContributionCalculator(step, measure, backend=per_pair).prefetch(grid)
    assert per_pair.batches_submitted == len(grid)


def test_batch_hint_overrides_constructor(spotify_small):
    """The engine's per-request hint wins over the constructor default."""
    step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))
    measure = ExceptionalityMeasure()
    grid = _wide_grid(spotify_small, n=7)
    backend = ParallelBackend(step, measure, workers=2, shard_batch=1)
    calculator = ContributionCalculator(step, measure, backend=backend)
    calculator.prefetch(grid, batch_hint=len(grid))
    assert backend.batches_submitted == 1
    serial = ContributionCalculator(step, measure, backend="incremental")
    for partition, attribute in grid:
        assert calculator.partition_contributions(partition, attribute) == \
            serial.partition_contributions(partition, attribute)
