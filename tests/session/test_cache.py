"""Tests of content fingerprints and the session cache's keying/invalidation.

The correctness contract of every session-cache layer is *keying by
content*: equal content must hit, any observable difference — a mutated
value, a different configuration, a different operation — must miss.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FedexConfig, config_signature, step_signature
from repro.dataframe import Column, Comparison, DataFrame
from repro.operators import ExploratoryStep, Filter, GroupBy
from repro.session import ExplanationSession, SessionCache


# ----------------------------------------------------------------- fingerprints
class TestColumnFingerprint:
    def test_equal_content_equal_fingerprint(self):
        first = Column("x", np.asarray([1.0, 2.0, 3.0]))
        second = Column("x", np.asarray([1.0, 2.0, 3.0]))
        assert first is not second
        assert first.fingerprint() == second.fingerprint()

    def test_value_change_changes_fingerprint(self):
        first = Column("x", np.asarray([1.0, 2.0, 3.0]))
        second = Column("x", np.asarray([1.0, 2.0, 4.0]))
        assert first.fingerprint() != second.fingerprint()

    def test_name_and_kind_participate(self):
        values = np.asarray([1.0, 2.0])
        assert Column("x", values).fingerprint() != Column("y", values).fingerprint()

    def test_in_place_mutation_changes_fingerprint(self):
        column = Column("x", np.asarray([1.0, 2.0, 3.0]))
        before = column.fingerprint()
        column.values[0] = 99.0
        assert column.fingerprint() != before

    def test_categorical_none_distinct_from_string_none(self):
        with_none = Column("c", np.asarray(["a", None], dtype=object))
        with_string = Column("c", np.asarray(["a", "None"], dtype=object))
        assert with_none.fingerprint() != with_string.fingerprint()

    def test_categorical_concatenation_boundaries_distinct(self):
        first = Column("c", np.asarray(["ab", "c"], dtype=object))
        second = Column("c", np.asarray(["a", "bc"], dtype=object))
        assert first.fingerprint() != second.fingerprint()

    def test_categorical_encoding_is_injection_proof(self):
        """Values containing separator-looking bytes must not collide."""
        pairs = [
            (["a\x00b"], ["a", "b"]),
            (["a\x00", "b"], ["a", "\x00b"]),
            (["1:a"], ["a"]),
            ([None, "a"], ["N", "a"]),
        ]
        for first_values, second_values in pairs:
            first = Column("c", np.asarray(first_values, dtype=object))
            second = Column("c", np.asarray(second_values, dtype=object))
            assert first.fingerprint() != second.fingerprint(), (first_values, second_values)

    def test_dtype_participates(self):
        as_int = Column("x", np.asarray([1, 2], dtype=np.int64))
        as_float = Column("x", np.asarray([1.0, 2.0]))
        assert as_int.fingerprint() != as_float.fingerprint()


class TestFrameFingerprint:
    def test_round_trip_through_rows(self, tiny_frame):
        rebuilt = DataFrame.from_rows(tiny_frame.to_rows(), tiny_frame.column_names)
        assert rebuilt.fingerprint() == tiny_frame.fingerprint()

    def test_column_order_participates(self):
        first = DataFrame({"a": [1.0], "b": [2.0]})
        second = DataFrame({"b": [2.0], "a": [1.0]})
        assert first.fingerprint() != second.fingerprint()

    def test_mutated_frame_changes_fingerprint(self, tiny_frame):
        before = tiny_frame.fingerprint()
        copy = tiny_frame.copy()
        assert copy.fingerprint() == before
        copy["popularity"].values[0] = -1.0
        assert copy.fingerprint() != before


_numeric_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=0, max_size=30
)
_string_lists = st.lists(
    st.one_of(st.text(max_size=5), st.none()), min_size=0, max_size=30
)


@given(_numeric_lists)
@settings(max_examples=50, deadline=None)
def test_property_numeric_fingerprint_round_trip(values):
    """Rebuilding a column from the same values reproduces the fingerprint."""
    array = np.asarray(values, dtype=float)
    assert Column("v", array).fingerprint() == Column("v", array.copy()).fingerprint()


@given(_string_lists)
@settings(max_examples=50, deadline=None)
def test_property_categorical_fingerprint_round_trip(values):
    array = np.asarray(values, dtype=object)
    assert Column("v", array).fingerprint() == Column("v", array.copy()).fingerprint()


@given(_numeric_lists, st.integers(min_value=0, max_value=29), st.floats(
    min_value=1.0, max_value=10.0, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_property_numeric_perturbation_changes_fingerprint(values, position, delta):
    """Changing any single value changes the fingerprint."""
    if not values:
        return
    position = position % len(values)
    array = np.asarray(values, dtype=float)
    perturbed = array.copy()
    perturbed[position] += delta
    assert Column("v", array).fingerprint() != Column("v", perturbed).fingerprint()


# -------------------------------------------------------------------- signatures
class TestSignatures:
    def test_step_signature_matches_for_rebuilt_step(self, tiny_frame):
        predicate = Comparison("popularity", ">", 65)
        first = ExploratoryStep([tiny_frame], Filter(predicate))
        second = ExploratoryStep([tiny_frame.copy()], Filter(Comparison("popularity", ">", 65)))
        assert step_signature(first) == step_signature(second)

    def test_step_signature_differs_across_predicates(self, tiny_frame):
        first = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 65)))
        second = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", 70)))
        assert step_signature(first) != step_signature(second)

    def test_step_signature_differs_across_operations(self, tiny_frame):
        filter_step = ExploratoryStep([tiny_frame], Filter(Comparison("year", ">", 2000)))
        groupby_step = ExploratoryStep([tiny_frame], GroupBy("decade", {"loudness": ["mean"]}))
        assert step_signature(filter_step) != step_signature(groupby_step)

    def test_config_signature_covers_every_field(self):
        base = config_signature(FedexConfig())
        assert config_signature(FedexConfig()) == base
        assert config_signature(FedexConfig(top_k_columns=3)) != base
        assert config_signature(FedexConfig(backend="exact")) != base
        assert config_signature(FedexConfig(set_counts=[5])) != base

    def test_config_signature_is_hashable(self):
        hash(config_signature(FedexConfig(target_columns=["a", "b"])))


# ----------------------------------------------------------- cache invalidation
class TestSessionCacheInvalidation:
    def _step(self, frame):
        return ExploratoryStep([frame], Filter(Comparison("popularity", ">", 65)))

    def test_identical_step_hits(self, spotify_small):
        session = ExplanationSession()
        first = session.explain(self._step(spotify_small))
        second = session.explain(self._step(spotify_small.copy()))
        assert second is first
        assert session.stats.report_hits == 1

    def test_mutated_input_frame_misses(self, spotify_small):
        session = ExplanationSession()
        mutable = spotify_small.copy()
        session.explain(self._step(mutable))
        mutable["popularity"].values[0] += 1.0
        session.explain(self._step(mutable))
        assert session.stats.report_hits == 0
        assert session.stats.report_misses == 2

    def test_different_config_misses(self, spotify_small):
        session = ExplanationSession()
        step = self._step(spotify_small)
        first = session.explain(step)
        second = session.explain(step, config=FedexConfig(top_k_columns=2))
        assert second is not first
        assert session.stats.report_hits == 0

    def test_different_measure_misses(self, spotify_small):
        session = ExplanationSession()
        step = ExploratoryStep([spotify_small], GroupBy("decade", {"loudness": ["mean"]}))
        session.explain(step)
        session.explain(step, measure="exceptionality")
        assert session.stats.report_hits == 0
        assert session.stats.report_misses == 2

    def test_cache_reports_toggle_disables_memoization(self, spotify_small):
        session = ExplanationSession(config=FedexConfig(cache_reports=False))
        step = self._step(spotify_small)
        first = session.explain(step)
        second = session.explain(step)
        assert second is not first
        assert session.stats.report_hits == 0
        assert session.stats.report_misses == 0

    def test_report_lru_eviction(self, spotify_small):
        session = ExplanationSession(cache=SessionCache(max_reports=1))
        first_step = self._step(spotify_small)
        second_step = ExploratoryStep(
            [spotify_small], Filter(Comparison("popularity", ">", 70))
        )
        session.explain(first_step)
        session.explain(second_step)  # evicts the first report
        session.explain(first_step)
        assert session.stats.report_hits == 0
        assert session.stats.report_misses == 3

    def test_clear_resets_everything(self, spotify_small):
        session = ExplanationSession()
        step = self._step(spotify_small)
        session.explain(step)
        session.clear()
        session.explain(step)
        assert session.stats.report_hits == 0
        assert session.stats.report_misses == 1


class TestColumnAdoption:
    def test_adoption_shares_sorted_order(self):
        cache = SessionCache()
        first = Column("x", np.asarray([3.0, 1.0, 2.0]))
        cache.adopt_column(first)
        order = first.sorted_order()
        second = Column("x", np.asarray([3.0, 1.0, 2.0]))
        cache.adopt_column(second)
        assert second._sorted_order is order
        assert cache.stats.column_structure_hits == 1

    def test_adoption_shares_factorization(self):
        cache = SessionCache()
        first = Column("c", np.asarray(["b", "a", "b"], dtype=object))
        cache.adopt_column(first)
        factorized = first.factorize()
        second = Column("c", np.asarray(["b", "a", "b"], dtype=object))
        cache.adopt_column(second)
        assert second._factorized is factorized

    def test_different_content_not_shared(self):
        cache = SessionCache()
        first = Column("x", np.asarray([3.0, 1.0, 2.0]))
        cache.adopt_column(first)
        first.sorted_order()
        second = Column("x", np.asarray([2.0, 1.0, 3.0]))
        cache.adopt_column(second)
        assert second._sorted_order is None

    def test_mutated_canonical_never_poisons_fresh_column(self):
        """Structure computed after an in-place mutation must not be shared."""
        cache = SessionCache()
        canonical = Column("x", np.asarray([3.0, 1.0, 2.0]))
        cache.adopt_column(canonical)
        canonical.values[:] = [9.0, 8.0, 7.0]
        order_after_mutation = canonical.sorted_order()
        fresh = Column("x", np.asarray([3.0, 1.0, 2.0]))
        cache.adopt_column(fresh)
        assert fresh._sorted_order is None  # stale canonical detected and dropped
        assert not np.array_equal(fresh.sorted_order(), order_after_mutation)

    def test_column_cap_evicts_oldest(self):
        cache = SessionCache(max_columns=2)
        for value in range(4):
            cache.adopt_column(Column("x", np.asarray([float(value)])))
        assert len(cache._columns) == 2


class TestPartitionCache:
    def test_partitions_memoized_by_key(self, tiny_frame):
        cache = SessionCache()
        calls = []

        def build():
            calls.append(1)
            return []

        key = (tiny_frame.fingerprint(), "decade", (5, 10), ("frequency",), 0, 2)
        cache.partitions(key, build)
        cache.partitions(key, build)
        assert len(calls) == 1
        assert cache.stats.partition_hits == 1
        assert cache.stats.partition_misses == 1

    def test_partitions_and_structures_are_bounded(self):
        cache = SessionCache(max_partitions=3, max_structures=2)
        for index in range(6):
            cache.partitions((f"fp{index}",), list)
            cache._structure((f"s{index}",), dict)
        assert len(cache._partitions) == 3
        assert len(cache._structures) == 2


class TestRequestScopedFingerprints:
    def test_fingerprints_hashed_once_per_request(self, tiny_frame, monkeypatch):
        cache = SessionCache()
        calls = []
        original = Column.fingerprint

        def counting(self):
            calls.append(self.name)
            return original(self)

        monkeypatch.setattr(Column, "fingerprint", counting)
        with cache.request():
            first = cache.frame_fingerprint(tiny_frame)
            second = cache.frame_fingerprint(tiny_frame)
        assert first == second
        assert len(calls) == tiny_frame.num_columns  # one hash per column, not two

    def test_memo_dies_with_the_scope(self, tiny_frame):
        cache = SessionCache()
        with cache.request():
            cache.frame_fingerprint(tiny_frame)
        assert cache._request_frames is None

    def test_outside_scope_recomputes(self, tiny_frame):
        cache = SessionCache()
        assert cache.frame_fingerprint(tiny_frame) == tiny_frame.fingerprint()
