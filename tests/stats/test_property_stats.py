"""Property-based tests of the statistics substrate (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    ValueDistribution,
    coefficient_of_variation,
    kendall_tau_distance,
    ks_from_distributions,
    ks_two_sample,
    ndcg,
    precision_at_k,
    standardize,
)

_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
_samples = st.lists(_floats, min_size=1, max_size=80)
_rankings = st.lists(st.sampled_from("abcdefgh"), min_size=1, max_size=8, unique=True)


@given(_samples, _samples)
@settings(max_examples=60, deadline=None)
def test_ks_is_bounded_and_symmetric(sample_a, sample_b):
    statistic = ks_two_sample(sample_a, sample_b)
    assert 0.0 <= statistic <= 1.0
    assert statistic == ks_two_sample(sample_b, sample_a)


@given(_samples)
@settings(max_examples=60, deadline=None)
def test_ks_of_sample_with_itself_is_zero(sample):
    assert ks_two_sample(sample, sample) == 0.0


@given(st.dictionaries(st.sampled_from("abcdef"), st.floats(min_value=0.01, max_value=10),
                       min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_ks_distributions_identity_and_bounds(weights):
    distribution = ValueDistribution(dict(weights))
    assert ks_from_distributions(distribution, distribution) == 0.0
    other = ValueDistribution({key: 1.0 for key in weights})
    assert 0.0 <= ks_from_distributions(distribution, other) <= 1.0


@given(_samples)
@settings(max_examples=60, deadline=None)
def test_cv_is_non_negative(sample):
    assert coefficient_of_variation(sample) >= 0.0


@given(_samples)
@settings(max_examples=60, deadline=None)
def test_cv_is_scale_invariant(sample):
    """CV is scale-free; compared with *relative* tolerance because the CV
    itself is unbounded (a near-cancelling mean puts it at ~1e6, where an
    absolute 1e-6 bound would demand ~1e-12 relative float precision)."""
    original = coefficient_of_variation(sample)
    scaled = coefficient_of_variation([3.0 * value for value in sample])
    assert abs(original - scaled) < 1e-6 * max(1.0, abs(original))


@given(_samples)
@settings(max_examples=60, deadline=None)
def test_standardize_preserves_length_and_is_monotone(sample):
    scores = standardize(sample)
    assert scores.shape[0] == len(sample)
    # Standardization is an affine transform with non-negative slope, so it
    # must be (weakly) monotone: sorting the inputs sorts the z-scores.
    ordered = np.sort(np.asarray(sample, dtype=float))
    ordered_scores = standardize(ordered)
    assert np.all(np.diff(ordered_scores) >= -1e-9)


@given(_rankings, _rankings)
@settings(max_examples=60, deadline=None)
def test_kendall_tau_symmetry_and_identity(first, second):
    assert kendall_tau_distance(first, first) == 0
    assert kendall_tau_distance(first, second) == kendall_tau_distance(second, first)


@given(_rankings, _rankings, st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_precision_at_k_is_bounded(predicted, relevant, k):
    assert 0.0 <= precision_at_k(predicted, relevant, k) <= 1.0


@given(_rankings)
@settings(max_examples=60, deadline=None)
def test_ndcg_of_ideal_ranking_is_one(items):
    relevance = {item: float(len(items) - index) for index, item in enumerate(items)}
    assert ndcg(items, relevance) == 1.0


@given(_rankings)
@settings(max_examples=60, deadline=None)
def test_ndcg_is_bounded(items):
    relevance = {item: 1.0 for item in items}
    assert 0.0 <= ndcg(list(reversed(items)), relevance) <= 1.0
