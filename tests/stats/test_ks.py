"""Unit tests for the Kolmogorov–Smirnov statistic (cross-checked against SciPy)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.dataframe import Column
from repro.stats import (
    ValueDistribution,
    ks_columns,
    ks_from_distributions,
    ks_from_value_counts_batch,
    ks_sorted_masked_batch,
    ks_two_sample,
)
from repro.stats.ks import ks_from_value_counts, ks_two_sample_sorted


class TestKsTwoSample:
    def test_identical_samples_score_zero(self):
        sample = np.asarray([1.0, 2.0, 3.0])
        assert ks_two_sample(sample, sample) == 0.0

    def test_disjoint_samples_score_one(self):
        assert ks_two_sample([1.0, 2.0], [10.0, 11.0]) == pytest.approx(1.0)

    def test_matches_scipy_on_random_data(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            a = rng.normal(0, 1, size=rng.integers(10, 200))
            b = rng.normal(rng.uniform(-1, 1), 1, size=rng.integers(10, 200))
            expected = scipy_stats.ks_2samp(a, b, method="asymp").statistic
            assert ks_two_sample(a, b) == pytest.approx(expected, abs=1e-9)

    def test_nan_values_ignored(self):
        assert ks_two_sample([1.0, np.nan], [1.0]) == 0.0

    def test_empty_sample_scores_zero(self):
        assert ks_two_sample([], [1.0, 2.0]) == 0.0


class TestKsFromDistributions:
    def test_identical_distributions(self):
        distribution = ValueDistribution({"a": 0.5, "b": 0.5})
        assert ks_from_distributions(distribution, distribution) == 0.0

    def test_disjoint_supports(self):
        first = ValueDistribution({"a": 1.0})
        second = ValueDistribution({"b": 1.0})
        assert ks_from_distributions(first, second) == pytest.approx(1.0)

    def test_empty_distribution_scores_zero(self):
        assert ks_from_distributions(ValueDistribution({}), ValueDistribution({"a": 1.0})) == 0.0

    def test_known_value(self):
        first = ValueDistribution({1.0: 0.5, 2.0: 0.5})
        second = ValueDistribution({1.0: 0.1, 2.0: 0.9})
        assert ks_from_distributions(first, second) == pytest.approx(0.4)

    def test_symmetry(self):
        first = ValueDistribution({1.0: 0.3, 2.0: 0.7})
        second = ValueDistribution({1.0: 0.8, 2.0: 0.2})
        assert ks_from_distributions(first, second) == pytest.approx(
            ks_from_distributions(second, first)
        )


class TestKsColumns:
    def test_numeric_columns_match_dict_implementation(self):
        rng = np.random.default_rng(1)
        before = Column("x", rng.integers(0, 20, 500).astype(float))
        after = Column("x", rng.integers(5, 20, 200).astype(float))
        expected = ks_from_distributions(
            ValueDistribution.from_column(before), ValueDistribution.from_column(after)
        )
        assert ks_columns(before, after) == pytest.approx(expected, abs=1e-9)

    def test_categorical_columns_match_dict_implementation(self):
        rng = np.random.default_rng(2)
        labels = np.asarray(["a", "b", "c", "d"], dtype=object)
        before = Column("x", labels[rng.integers(0, 4, 400)])
        after = Column("x", labels[rng.integers(2, 4, 150)])
        expected = ks_from_distributions(
            ValueDistribution.from_column(before), ValueDistribution.from_column(after)
        )
        assert ks_columns(before, after) == pytest.approx(expected, abs=1e-9)

    def test_filter_that_changes_nothing_scores_zero(self):
        column = Column("x", np.asarray([1.0, 2.0, 3.0, 4.0]))
        assert ks_columns(column, column) == 0.0

    def test_empty_side_scores_zero_for_both_regimes(self):
        """An empty column scores 0 (no distribution to deviate from) —
        the shared convention of the numeric and categorical paths, which
        the incremental backend's subtraction-based re-scoring relies on."""
        numeric = Column("x", np.asarray([1.0, 2.0]))
        empty_numeric = Column("x", np.asarray([], dtype=float))
        assert ks_columns(numeric, empty_numeric) == 0.0
        categorical = Column("c", np.asarray(["a", "b"], dtype=object))
        empty_categorical = Column("c", np.asarray([], dtype=object))
        assert ks_columns(categorical, empty_categorical) == 0.0

    def test_range_is_zero_to_one(self):
        before = Column("x", np.arange(100, dtype=float))
        after = Column("x", np.arange(90, 100, dtype=float))
        score = ks_columns(before, after)
        assert 0.0 <= score <= 1.0

    def test_running_example_shape(self):
        """A popularity filter shifts the decade distribution towards recent decades."""
        rng = np.random.default_rng(3)
        years = rng.integers(1960, 2020, 2_000)
        decades = np.asarray([f"{(y // 10) * 10}s" for y in years], dtype=object)
        popularity = (years - 1960) + rng.normal(0, 10, size=years.size)
        before = Column("decade", decades)
        after = Column("decade", decades[popularity > 45])
        assert ks_columns(before, after) > 0.2


class TestBatchedKs:
    """The batched 2-D passes must reproduce the serial statistics bit-for-bit."""

    def test_sorted_masked_batch_matches_serial(self):
        rng = np.random.default_rng(7)
        sample_a = np.sort(rng.normal(0, 1, 300))
        sample_b = np.sort(rng.normal(0.3, 1.2, 200))
        keep_a = rng.random((8, sample_a.size)) > 0.3
        keep_b = rng.random((8, sample_b.size)) > 0.2
        batch = ks_sorted_masked_batch(sample_a, keep_a, sample_b, keep_b)
        for row in range(8):
            serial = ks_two_sample_sorted(sample_a[keep_a[row]], sample_b[keep_b[row]])
            assert batch[row] == serial

    def test_sorted_masked_batch_full_side(self):
        """keep=None means every set keeps the whole array on that side."""
        rng = np.random.default_rng(8)
        sample_a = np.sort(rng.normal(0, 1, 150))
        sample_b = np.sort(rng.normal(0.5, 1, 120))
        keep_b = rng.random((5, sample_b.size)) > 0.4
        batch = ks_sorted_masked_batch(sample_a, None, sample_b, keep_b)
        for row in range(5):
            serial = ks_two_sample_sorted(sample_a, sample_b[keep_b[row]])
            assert batch[row] == serial

    def test_sorted_masked_batch_empty_subsample_scores_zero(self):
        sample = np.asarray([1.0, 2.0, 3.0])
        keep_a = np.asarray([[False, False, False], [True, True, True]])
        keep_b = np.ones((2, 3), dtype=bool)
        batch = ks_sorted_masked_batch(sample, keep_a, sample, keep_b)
        assert batch[0] == 0.0
        assert batch[1] == 0.0  # identical samples

    def test_value_counts_batch_matches_serial(self):
        rng = np.random.default_rng(9)
        support_size = 6
        positions_before = np.asarray([0, 2, 3, 5])
        positions_after = np.asarray([1, 2, 4, 5])
        counts_before = rng.integers(0, 30, (7, 4)).astype(float)
        counts_after = rng.integers(0, 30, (7, 4)).astype(float)
        batch = ks_from_value_counts_batch(
            counts_before, positions_before, counts_after, positions_after, support_size
        )
        for row in range(7):
            serial = ks_from_value_counts(
                counts_before[row], positions_before,
                counts_after[row], positions_after, support_size,
            )
            assert batch[row] == serial

    def test_sorted_masked_batch_rejects_double_none(self):
        sample = np.asarray([1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            ks_sorted_masked_batch(sample, None, sample, None)

    def test_value_counts_batch_zero_mass_scores_zero(self):
        positions = np.asarray([0, 1])
        counts = np.asarray([[0.0, 0.0], [3.0, 1.0]])
        other = np.asarray([[2.0, 2.0], [2.0, 2.0]])
        batch = ks_from_value_counts_batch(counts, positions, other, positions, 2)
        assert batch[0] == 0.0


class TestChunkedBatchedKs:
    """A memory budget must chunk the 2-D passes without changing one bit.

    Rows of the batched passes are independent, so processing the sets in
    chunks (down to one set per chunk under a 1-byte budget) must reproduce
    the unchunked statistics exactly — this is the equivalence contract of
    the paper-full-scale memory bound.
    """

    @pytest.mark.parametrize("budget_bytes", [1, 1_000, 50_000])
    def test_sorted_masked_batch_chunked_is_bit_identical(self, budget_bytes):
        rng = np.random.default_rng(11)
        sample_a = np.sort(rng.normal(0, 1, 250))
        sample_b = np.sort(rng.normal(0.2, 1.1, 180))
        keep_a = rng.random((13, sample_a.size)) > 0.35
        keep_b = rng.random((13, sample_b.size)) > 0.25
        unchunked = ks_sorted_masked_batch(sample_a, keep_a, sample_b, keep_b,
                                           budget_bytes=1 << 40)
        chunked = ks_sorted_masked_batch(sample_a, keep_a, sample_b, keep_b,
                                         budget_bytes=budget_bytes)
        assert np.array_equal(chunked, unchunked)

    @pytest.mark.parametrize("budget_bytes", [1, 2_000])
    def test_sorted_masked_batch_chunked_with_full_side(self, budget_bytes):
        rng = np.random.default_rng(12)
        sample_a = np.sort(rng.normal(0, 1, 90))
        sample_b = np.sort(rng.normal(0.4, 0.9, 140))
        keep_b = rng.random((9, sample_b.size)) > 0.5
        unchunked = ks_sorted_masked_batch(sample_a, None, sample_b, keep_b,
                                           budget_bytes=1 << 40)
        chunked = ks_sorted_masked_batch(sample_a, None, sample_b, keep_b,
                                         budget_bytes=budget_bytes)
        assert np.array_equal(chunked, unchunked)

    @pytest.mark.parametrize("budget_bytes", [1, 500])
    def test_value_counts_batch_chunked_is_bit_identical(self, budget_bytes):
        rng = np.random.default_rng(13)
        support_size = 9
        positions_before = np.asarray([0, 2, 3, 5, 8])
        positions_after = np.asarray([1, 2, 4, 6, 7])
        counts_before = rng.integers(0, 25, (11, 5)).astype(float)
        counts_after = rng.integers(0, 25, (11, 5)).astype(float)
        unchunked = ks_from_value_counts_batch(
            counts_before, positions_before, counts_after, positions_after,
            support_size, budget_bytes=1 << 40,
        )
        chunked = ks_from_value_counts_batch(
            counts_before, positions_before, counts_after, positions_after,
            support_size, budget_bytes=budget_bytes,
        )
        assert np.array_equal(chunked, unchunked)

    def test_engine_results_identical_under_tiny_ks_budget(self):
        """End-to-end: a 1-byte KS budget must not change any explanation."""
        from repro.core import FedexConfig, FedexExplainer
        from repro.dataframe import Comparison, DataFrame
        from repro.operators import ExploratoryStep, Filter

        rng = np.random.default_rng(14)
        frame = DataFrame({
            "value": rng.normal(50, 20, 600),
            "group": np.asarray(rng.choice(["a", "b", "c", "d"], 600), dtype=object),
        })
        step = ExploratoryStep([frame], Filter(Comparison("value", ">", 55)))
        default = FedexExplainer(FedexConfig()).explain(step)
        budgeted = FedexExplainer(FedexConfig(ks_budget_bytes=1)).explain(step)
        assert default.skyline_keys() == budgeted.skyline_keys()
        for mine, theirs in zip(default.all_candidates, budgeted.all_candidates):
            assert mine.contribution == theirs.contribution
            assert mine.standardized_contribution == theirs.standardized_contribution
