"""Unit tests for dispersion and shape statistics (cross-checked against SciPy)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats import (
    coefficient_of_variation,
    fisher_pearson_skewness,
    gini_coefficient,
    mean_and_std,
    standardize,
    z_score,
)


class TestCoefficientOfVariation:
    def test_matches_definition(self):
        values = [2.0, 4.0, 6.0, 8.0]
        expected = np.std(values, ddof=1) / np.mean(values)
        assert coefficient_of_variation(values) == pytest.approx(expected)

    def test_constant_values_score_zero(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0

    def test_single_value_scores_zero(self):
        assert coefficient_of_variation([5.0]) == 0.0

    def test_zero_mean_scores_zero(self):
        assert coefficient_of_variation([-1.0, 1.0]) == 0.0

    def test_negative_mean_gives_positive_cv(self):
        assert coefficient_of_variation([-2.0, -4.0, -6.0]) > 0

    def test_nan_values_ignored(self):
        assert coefficient_of_variation([1.0, 2.0, np.nan]) == pytest.approx(
            coefficient_of_variation([1.0, 2.0])
        )

    def test_paper_example_loudness_more_diverse_than_danceability(self):
        loudness = [-11.07, -7.82, -10.69, -8.23, -9.4, -7.5]
        danceability = [0.555, 0.586, 0.555, 0.594, 0.57, 0.58]
        assert coefficient_of_variation(loudness) > coefficient_of_variation(danceability)


class TestSkewness:
    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(0, 1, 500)
        assert fisher_pearson_skewness(values) == pytest.approx(
            scipy_stats.skew(values, bias=True), abs=1e-9
        )

    def test_symmetric_distribution_near_zero(self):
        values = np.concatenate([np.arange(-50, 0), np.arange(1, 51)]).astype(float)
        assert abs(fisher_pearson_skewness(values)) < 1e-9

    def test_constant_values_score_zero(self):
        assert fisher_pearson_skewness([3.0, 3.0, 3.0]) == 0.0

    def test_too_few_values_score_zero(self):
        assert fisher_pearson_skewness([1.0, 2.0]) == 0.0


class TestStandardize:
    def test_z_scores_have_zero_mean_unit_std(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        scores = standardize(values)
        assert np.mean(scores) == pytest.approx(0.0, abs=1e-12)
        assert np.std(scores, ddof=1) == pytest.approx(1.0)

    def test_constant_values_give_zero_scores(self):
        assert standardize([2.0, 2.0, 2.0]).tolist() == [0.0, 0.0, 0.0]

    def test_single_value_gives_zero(self):
        assert standardize([3.0]).tolist() == [0.0]

    def test_z_score_single_value(self):
        assert z_score(4.0, [1.0, 2.0, 3.0]) == pytest.approx((4.0 - 2.0) / 1.0)

    def test_z_score_constant_population(self):
        assert z_score(4.0, [1.0, 1.0]) == 0.0


class TestMeanAndStd:
    def test_values(self):
        mean, std = mean_and_std([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)

    def test_empty(self):
        assert mean_and_std([]) == (0.0, 0.0)


class TestGini:
    def test_uniform_values_near_zero(self):
        assert gini_coefficient([1.0] * 10) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_values_near_one(self):
        values = [0.0] * 99 + [100.0]
        assert gini_coefficient(values) > 0.9

    def test_empty_is_zero(self):
        assert gini_coefficient([]) == 0.0

    def test_bounded(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(0, 2, 200)
        assert 0.0 <= gini_coefficient(values) <= 1.0
