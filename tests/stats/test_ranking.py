"""Unit tests for ranking-quality metrics (precision@k, Kendall-tau, nDCG)."""

from __future__ import annotations

import pytest

from repro.stats import (
    dcg,
    kendall_tau_distance,
    ndcg,
    normalized_kendall_tau_distance,
    precision_at_k,
    reciprocal_rank,
)


class TestPrecisionAtK:
    def test_perfect_prediction(self):
        assert precision_at_k(["a", "b", "c"], ["a", "b", "c"], k=3) == 1.0

    def test_partial_overlap(self):
        assert precision_at_k(["a", "x", "b"], ["a", "b"], k=3) == pytest.approx(2 / 3)

    def test_k_smaller_than_prediction(self):
        assert precision_at_k(["a", "x", "b"], ["a", "b"], k=1) == 1.0

    def test_empty_prediction(self):
        assert precision_at_k([], ["a"], k=3) == 0.0

    def test_zero_k(self):
        assert precision_at_k(["a"], ["a"], k=0) == 0.0


class TestKendallTau:
    def test_identical_rankings(self):
        assert kendall_tau_distance(["a", "b", "c"], ["a", "b", "c"]) == 0

    def test_reversed_rankings(self):
        assert kendall_tau_distance(["a", "b", "c"], ["c", "b", "a"]) == 3

    def test_single_swap(self):
        assert kendall_tau_distance(["a", "b", "c"], ["a", "c", "b"]) == 1

    def test_disjoint_items_still_defined(self):
        distance = kendall_tau_distance(["a", "b"], ["c", "d"])
        assert distance >= 0

    def test_normalized_range(self):
        assert normalized_kendall_tau_distance(["a", "b", "c"], ["c", "b", "a"]) == 1.0
        assert normalized_kendall_tau_distance(["a", "b", "c"], ["a", "b", "c"]) == 0.0

    def test_normalized_single_item(self):
        assert normalized_kendall_tau_distance(["a"], ["a"]) == 0.0


class TestNdcg:
    def test_perfect_ranking_is_one(self):
        relevance = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg(["a", "b", "c"], relevance) == pytest.approx(1.0)

    def test_worst_ranking_below_one(self):
        relevance = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg(["c", "b", "a"], relevance) < 1.0

    def test_missing_items_count_as_zero(self):
        relevance = {"a": 1.0}
        assert ndcg(["x", "a"], relevance) < 1.0

    def test_empty_relevance(self):
        assert ndcg(["a"], {}) == 1.0

    def test_k_truncation(self):
        relevance = {"a": 3.0, "b": 2.0}
        assert ndcg(["b", "a"], relevance, k=1) < 1.0

    def test_dcg_values(self):
        assert dcg([3.0, 2.0]) == pytest.approx(3.0 + 2.0 / 1.584962500721156)
        assert dcg([]) == 0.0


class TestReciprocalRank:
    def test_first_hit(self):
        assert reciprocal_rank(["a", "b"], ["a"]) == 1.0

    def test_second_hit(self):
        assert reciprocal_rank(["x", "a"], ["a"]) == 0.5

    def test_no_hit(self):
        assert reciprocal_rank(["x", "y"], ["a"]) == 0.0
