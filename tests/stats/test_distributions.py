"""Unit tests for value distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import Column
from repro.stats import ValueDistribution, aligned_cdfs


class TestConstruction:
    def test_from_column_uses_relative_frequencies(self):
        column = Column("x", np.asarray(["a", "a", "b", None], dtype=object))
        distribution = ValueDistribution.from_column(column)
        assert distribution.probability("a") == pytest.approx(2 / 3)
        assert distribution.probability("b") == pytest.approx(1 / 3)

    def test_from_values_skips_missing(self):
        distribution = ValueDistribution.from_values([1.0, 1.0, np.nan, None, 2.0])
        assert distribution.probability(1.0) == pytest.approx(2 / 3)

    def test_probabilities_are_renormalised(self):
        distribution = ValueDistribution({"a": 2.0, "b": 6.0})
        assert distribution.probability("b") == pytest.approx(0.75)

    def test_empty_distribution_is_falsy(self):
        assert not ValueDistribution({})
        assert len(ValueDistribution({})) == 0


class TestQueries:
    def test_support_is_sorted(self):
        distribution = ValueDistribution({"b": 1.0, "a": 1.0})
        assert distribution.support() == ["a", "b"]

    def test_numbers_sort_before_strings(self):
        distribution = ValueDistribution({"z": 1.0, 3.0: 1.0})
        assert distribution.support()[0] == 3.0

    def test_most_common(self):
        distribution = ValueDistribution({"a": 1.0, "b": 3.0})
        assert distribution.most_common(1)[0][0] == "b"

    def test_unknown_value_has_zero_probability(self):
        assert ValueDistribution({"a": 1.0}).probability("zzz") == 0.0

    def test_entropy_uniform_is_log_n(self):
        distribution = ValueDistribution({"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0})
        assert distribution.entropy() == pytest.approx(np.log(4))

    def test_entropy_degenerate_is_zero(self):
        assert ValueDistribution({"a": 5.0}).entropy() == 0.0

    def test_total_variation_distance(self):
        first = ValueDistribution({"a": 1.0})
        second = ValueDistribution({"b": 1.0})
        assert first.total_variation_distance(second) == pytest.approx(1.0)
        assert first.total_variation_distance(first) == 0.0


class TestAlignedCdfs:
    def test_shared_domain(self):
        first = ValueDistribution({1.0: 0.5, 2.0: 0.5})
        second = ValueDistribution({2.0: 1.0})
        cdf_first, cdf_second = aligned_cdfs(first, second)
        assert cdf_first.tolist() == pytest.approx([0.5, 1.0])
        assert cdf_second.tolist() == pytest.approx([0.0, 1.0])

    def test_both_end_at_one(self):
        first = ValueDistribution({"a": 0.3, "b": 0.7})
        second = ValueDistribution({"b": 0.2, "c": 0.8})
        cdf_first, cdf_second = aligned_cdfs(first, second)
        assert cdf_first[-1] == pytest.approx(1.0)
        assert cdf_second[-1] == pytest.approx(1.0)

    def test_empty_inputs(self):
        cdf_first, cdf_second = aligned_cdfs(ValueDistribution({}), ValueDistribution({}))
        assert cdf_first.size == 0 and cdf_second.size == 0
