"""Tests of the multi-tenant explanation service front end.

Families: request routing (open/submit/explain produce engine-identical
reports), concurrency stress (many tenants, shared store, budget invariants
under a live worker pool), admission control (block vs reject), and
metrics.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro import (
    Comparison,
    ExplanationService,
    ExploratoryStep,
    FedexConfig,
    Filter,
    GroupBy,
    ServiceConfig,
)
from repro.core import FedexExplainer
from repro.errors import ServiceError, ServiceOverloadError
from repro.session import CacheStore

#: Worker count of the stress tests; the CI service-concurrency job sets 4.
STRESS_WORKERS = int(os.environ.get("REPRO_SERVICE_WORKERS", "4"))


@pytest.fixture
def service():
    svc = ExplanationService(
        config=FedexConfig(seed=0),
        service_config=ServiceConfig(workers=STRESS_WORKERS),
    )
    yield svc
    svc.close()


def _steps(frame, thresholds=(60, 65, 70)):
    return [
        ExploratoryStep([frame], Filter(Comparison("popularity", ">", threshold)))
        for threshold in thresholds
    ]


class TestRouting:
    def test_explain_matches_stateless_engine(self, service, spotify_small):
        step = _steps(spotify_small)[0]
        reference = FedexExplainer(FedexConfig(seed=0)).explain(step)
        report = service.explain("alice", step)
        assert report.skyline_keys() == reference.skyline_keys()

    def test_open_routes_wrapper_through_service(self, service, spotify_small):
        songs = service.open("alice", spotify_small)
        popular = songs.filter(Comparison("popularity", ">", 65))
        first = popular.explain()
        second = popular.explain()
        assert second is first  # memo hit through the shared store
        assert service.metrics.snapshot("alice")["requests"] == 2

    def test_derived_wrappers_keep_the_tenant_binding(self, service, spotify_small):
        songs = service.open("alice", spotify_small)
        recent = songs.filter(Comparison("year", ">=", 1990))
        popular = recent.filter(Comparison("popularity", ">", 65))
        popular.explain()
        assert service.metrics.snapshot("alice")["requests"] == 1
        assert service.store.tenant_usage("alice") > 0

    def test_submit_returns_future(self, service, spotify_small):
        step = _steps(spotify_small)[0]
        future = service.submit("alice", step)
        report = future.result(timeout=60)
        assert report.config.seed == 0

    def test_tenants_share_reports_across_sessions(self, service, spotify_small):
        step = _steps(spotify_small)[0]
        first = service.explain("alice", step)
        second = service.explain("bob", step)
        assert second is first

    def test_closed_service_rejects_requests(self, spotify_small):
        svc = ExplanationService()
        svc.close()
        with pytest.raises(ServiceError):
            svc.submit("alice", _steps(spotify_small)[0])

    def test_per_request_config_override(self, service, spotify_small):
        step = _steps(spotify_small)[0]
        report = service.explain("alice", step, config=FedexConfig(top_k_columns=1))
        assert len(report.selected_columns) <= 1


class TestConcurrencyStress:
    def test_four_tenants_hammering_shared_store(self, spotify_small):
        """The acceptance stress shape: concurrent tenants, bounded store."""
        budget = 48 * 1024 * 1024
        svc = ExplanationService(
            config=FedexConfig(seed=0),
            service_config=ServiceConfig(workers=STRESS_WORKERS,
                                         cache_budget_bytes=budget,
                                         tenant_quota_bytes=budget // 2),
        )
        steps = _steps(spotify_small, thresholds=(55, 60, 65, 70, 75))
        reference = [FedexExplainer(FedexConfig(seed=0)).explain(step) for step in steps]
        failures = []
        max_usage = [0]

        def client(tenant: str) -> None:
            try:
                for step, expected in zip(steps, reference):
                    report = svc.explain(tenant, step)
                    if report.skyline_keys() != expected.skyline_keys():
                        failures.append((tenant, "skyline mismatch"))
                    max_usage[0] = max(max_usage[0], svc.store.usage_bytes)
            except Exception as exc:  # pragma: no cover - failure path
                failures.append((tenant, exc))

        threads = [threading.Thread(target=client, args=(f"tenant-{i}",))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        svc.close()
        assert not failures
        assert max_usage[0] <= budget
        snapshot = svc.stats()
        assert snapshot["requests"] == 20
        assert snapshot["completed"] == 20
        assert snapshot["errors"] == 0
        # The lifecycle counters reconcile at quiescence: every admitted
        # request was closed exactly once.
        assert snapshot["requests"] == (snapshot["completed"]
                                        + snapshot["errors"]
                                        + snapshot["inflight"])
        assert snapshot["inflight"] == 0

    def test_mixed_workload_with_quota_pressure(self, spotify_small):
        """Tiny per-tenant quotas force constant eviction; results stay right."""
        svc = ExplanationService(
            config=FedexConfig(seed=0),
            service_config=ServiceConfig(workers=STRESS_WORKERS,
                                         cache_budget_bytes=8 * 1024 * 1024,
                                         tenant_quota_bytes=2 * 1024 * 1024),
        )
        steps = _steps(spotify_small) + [
            ExploratoryStep([spotify_small], GroupBy("decade", {"loudness": ["mean"]}))
        ]
        reference = [FedexExplainer(FedexConfig(seed=0)).explain(step) for step in steps]
        failures = []

        def client(tenant: str) -> None:
            try:
                for _ in range(2):
                    for step, expected in zip(steps, reference):
                        report = svc.explain(tenant, step)
                        if report.skyline_keys() != expected.skyline_keys():
                            failures.append((tenant, "mismatch"))
            except Exception as exc:  # pragma: no cover - failure path
                failures.append((tenant, exc))

        threads = [threading.Thread(target=client, args=(f"tenant-{i}",))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        svc.close()
        assert not failures
        assert svc.store.usage_bytes <= 8 * 1024 * 1024
        for tenant in svc.store.tenants():
            assert svc.store.tenant_usage(tenant) <= 2 * 1024 * 1024


class TestAdmission:
    def _blocking_service(self, admission: str):
        svc = ExplanationService(
            service_config=ServiceConfig(workers=1, max_inflight_per_tenant=1,
                                         admission=admission),
        )
        release = threading.Event()
        started = threading.Event()
        session = svc.session("alice")

        def slow_explain(step, measure=None, config=None):
            started.set()
            release.wait(timeout=10)
            return "done"

        session.explain = slow_explain
        return svc, release, started

    def test_reject_sheds_excess_load(self, spotify_small):
        svc, release, started = self._blocking_service("reject")
        step = _steps(spotify_small)[0]
        try:
            first = svc.submit("alice", step)
            assert started.wait(timeout=10)
            with pytest.raises(ServiceOverloadError):
                svc.submit("alice", step)
            assert svc.metrics.snapshot("alice")["rejected"] == 1
            # Other tenants have their own admission slots (per-tenant bound).
            release.set()
            assert first.result(timeout=10) == "done"
        finally:
            release.set()
            svc.close()

    def test_block_waits_for_a_slot(self, spotify_small):
        svc, release, started = self._blocking_service("block")
        step = _steps(spotify_small)[0]
        try:
            first = svc.submit("alice", step)
            assert started.wait(timeout=10)
            outcome = {}

            def second_caller():
                outcome["report"] = svc.explain("alice", step)

            blocked = threading.Thread(target=second_caller)
            blocked.start()
            time.sleep(0.1)
            assert "report" not in outcome  # still waiting on the slot
            release.set()
            blocked.join(timeout=10)
            assert outcome["report"] == "done"
            assert first.result(timeout=10) == "done"
        finally:
            release.set()
            svc.close()

    def test_session_failure_releases_admission_slot(self, spotify_small):
        """Regression: a submit that fails before reaching the pool must
        release the tenant's admission slot (and close the metrics
        accounting), not leak it.  Pre-fix, the failed submit left the
        tenant's only slot acquired and the follow-up request below was
        shed with ServiceOverloadError."""
        svc = ExplanationService(
            config=FedexConfig(seed=0),
            service_config=ServiceConfig(workers=1, max_inflight_per_tenant=1,
                                         admission="reject"),
        )
        step = _steps(spotify_small)[0]
        try:
            def exploding_session(tenant):
                raise RuntimeError("session backend unavailable")

            svc.session = exploding_session
            with pytest.raises(RuntimeError):
                svc.submit("alice", step)
            del svc.session  # restore the real (class) method
            report = svc.explain("alice", step)  # pre-fix: overload error
            assert report.skyline_keys()
            snapshot = svc.metrics.snapshot("alice")
            assert snapshot["requests"] == (snapshot["completed"]
                                            + snapshot["errors"]
                                            + snapshot["inflight"])
            assert snapshot["inflight"] == 0
        finally:
            svc.close()

    def test_executor_failure_closes_admitted_accounting(self, spotify_small):
        """A request admitted (counted) but refused by the pool is closed
        as an error, keeping admitted == completed + errors + inflight."""
        svc = ExplanationService(
            service_config=ServiceConfig(workers=1, max_inflight_per_tenant=1,
                                         admission="reject"),
        )
        step = _steps(spotify_small)[0]
        try:
            svc._executor.shutdown(wait=True)
            with pytest.raises(RuntimeError):  # pool refuses new work
                svc.submit("alice", step)
            snapshot = svc.metrics.snapshot("alice")
            assert snapshot["requests"] == 1
            assert snapshot["errors"] == 1
            assert snapshot["inflight"] == 0
        finally:
            svc.close()

    def test_slot_released_after_completion(self, spotify_small):
        svc = ExplanationService(
            config=FedexConfig(seed=0),
            service_config=ServiceConfig(workers=1, max_inflight_per_tenant=1,
                                         admission="reject"),
        )
        step = _steps(spotify_small)[0]
        try:
            for _ in range(3):  # sequential requests never trip the bound
                svc.explain("alice", step)
        finally:
            svc.close()


class TestMetrics:
    def test_latency_and_counts_recorded(self, service, spotify_small):
        step = _steps(spotify_small)[0]
        service.explain("alice", step)
        service.explain("alice", step)
        snapshot = service.stats("alice")
        assert snapshot["requests"] == 2
        assert snapshot["completed"] == 2
        assert snapshot["mean_seconds"] > 0
        overall = service.stats()
        assert overall["max_seconds"] >= overall["mean_seconds"] > 0
        assert overall["store"]["hit_rate"] > 0  # the second explain hit

    def test_errors_counted(self, service):
        bad_step = ExploratoryStep(
            [__import__("repro").DataFrame({"x": np.asarray([1.0, 2.0])})],
            Filter(Comparison("x", ">", 1.0)),
        )
        with pytest.raises(Exception):
            # Interestingness has no applicable column -> ExplanationError.
            service.explain("alice", bad_step, config=FedexConfig(target_columns=["nope"]))
        snapshot = service.stats("alice")
        assert snapshot["errors"] == 1
        assert snapshot["requests"] == (snapshot["completed"]
                                        + snapshot["errors"]
                                        + snapshot["inflight"])
        assert snapshot["inflight"] == 0

    def test_store_usage_visible_per_tenant(self, service, spotify_small):
        service.explain("alice", _steps(spotify_small)[0])
        assert service.stats("alice")["store_bytes"] > 0
        assert service.stats()["store_bytes"] >= service.stats("alice")["store_bytes"]


class TestObservability:
    def test_render_metrics_is_one_valid_prometheus_document(
            self, service, spotify_small):
        from repro.obs.metrics import validate_prometheus_text

        service.explain("alice", _steps(spotify_small)[0])
        families = validate_prometheus_text(service.render_metrics())
        # Historical names survive the namespacing (they already conform),
        # and each family appears exactly once — the parser would reject
        # the old concatenation's duplicate blocks.
        assert families["repro_service_requests_total"] == "counter"
        assert families["repro_service_request_seconds"] == "histogram"

    def test_duplicate_family_names_across_registries_dedupe(
            self, service, spotify_small):
        from repro.obs.metrics import REGISTRY, validate_prometheus_text

        # Force the collision render_metrics has to survive: the same
        # family name registered in the service registry and the global
        # one.  Namespacing keeps them distinct; nothing is dropped.
        try:
            service.metrics.registry.counter("collide_total", "svc side").inc(1)
            REGISTRY.counter("collide_total", "global side").inc(2)
        except ValueError:
            pass  # already registered by an earlier test in this process
        families = validate_prometheus_text(service.render_metrics())
        assert "repro_service_collide_total" in families
        assert "repro_collide_total" in families
        service.explain("alice", _steps(spotify_small)[0])
        validate_prometheus_text(service.render_metrics())

    def test_attach_observability_serves_and_detaches(
            self, service, spotify_small, monkeypatch):
        import json
        import urllib.request

        from repro.obs.metrics import validate_prometheus_text

        server = service.attach_observability()
        assert service.attach_observability() is server  # idempotent
        # Requests run on pool threads, which see the env flag rather than
        # the caller's context-local tracing() override.
        monkeypatch.setenv("REPRO_TRACE", "1")
        service.explain("alice", _steps(spotify_small)[0])

        with urllib.request.urlopen(server.url + "/metrics", timeout=5) as r:
            families = validate_prometheus_text(r.read().decode("utf-8"))
        assert families["repro_service_requests_total"] == "counter"

        with urllib.request.urlopen(server.url + "/healthz", timeout=5) as r:
            health = json.loads(r.read())
        assert health["status"] == "ok"
        assert health["tenants"] == 1
        assert health["workers"] == service.service_config.workers

        with urllib.request.urlopen(server.url + "/traces", timeout=5) as r:
            traces = json.loads(r.read())
        assert traces["count"] >= 1
        assert traces["traces"][0]["root"] == "explain"
        assert traces["traces"][0]["critical_path"]

        service.close()
        # The socket is gone and later traced requests leak nowhere.
        with pytest.raises(Exception):
            urllib.request.urlopen(server.url + "/healthz", timeout=0.5)

    def test_attach_observability_with_export_sink(
            self, service, spotify_small, tmp_path, monkeypatch):
        path = tmp_path / "otlp.jsonl"
        service.attach_observability(export_sink=str(path))
        monkeypatch.setenv("REPRO_TRACE", "1")
        service.explain("alice", _steps(spotify_small)[0])
        exporter = service._obs_exporter
        assert exporter.flush(5.0)
        assert '"name": "explain"' in path.read_text()
        service.close()
        assert service._obs_exporter is None  # close() detached it
        assert exporter.stats()["exported"] >= 1
