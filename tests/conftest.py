"""Shared fixtures for the test suite.

Fixtures are deliberately small (a few thousand rows at most) so the full
suite stays fast; the paper-scale sizes are exercised by the benchmark
harness instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import Column, DataFrame
from repro.datasets import DatasetRegistry, load_credit, load_spotify
from repro.datasets.products import load_products_and_sales


@pytest.fixture
def tiny_frame() -> DataFrame:
    """A 8-row dataframe with numeric and categorical columns."""
    return DataFrame({
        "year": np.asarray([1991, 1992, 2001, 2002, 2011, 2012, 2013, 2014], dtype=float),
        "decade": np.asarray(["1990s", "1990s", "2000s", "2000s", "2010s", "2010s",
                              "2010s", "2010s"], dtype=object),
        "popularity": np.asarray([30, 40, 50, 55, 70, 75, 80, 85], dtype=float),
        "loudness": np.asarray([-12.0, -11.0, -9.0, -8.5, -7.0, -6.5, -6.0, -5.5]),
    })


@pytest.fixture
def grouped_frame() -> DataFrame:
    """The dataframe of the paper's §3.3 negative-contribution example."""
    return DataFrame({
        "label": np.asarray(["x", "x", "y"], dtype=object),
        "value": np.asarray([1.0, 2.0, 3.0]),
    })


@pytest.fixture(scope="session")
def spotify_small() -> DataFrame:
    """A 4000-row synthetic Spotify dataset (session-scoped for speed)."""
    return load_spotify(n_rows=4_000, seed=7)


@pytest.fixture(scope="session")
def credit_small() -> DataFrame:
    """A 3000-row synthetic Credit Card Customers dataset."""
    return load_credit(n_rows=3_000, seed=11)


@pytest.fixture(scope="session")
def products_and_sales_small():
    """Small Products and Sales tables sharing one catalogue."""
    return load_products_and_sales(n_sales=8_000, n_products=800, seed=29)


@pytest.fixture(scope="session")
def tiny_registry() -> DatasetRegistry:
    """A dataset registry with very small tables for workload tests."""
    return DatasetRegistry(
        spotify_rows=3_000, bank_rows=2_000, sales_rows=6_000, products_rows=600, seed=1
    )
