"""Tests of the sampling-accuracy experiment harness (Figures 7 and 8)."""

from __future__ import annotations

import pytest

from repro.core import FedexConfig, FedexExplainer
from repro.datasets import DatasetRegistry
from repro.experiments import compare_reports, mean_rows, rows_accuracy_sweep, sampling_accuracy_sweep
from repro.workloads import get_query


class TestCompareReports:
    def test_identical_reports_score_perfectly(self, tiny_registry):
        step = get_query(6).build_step(tiny_registry)
        report = FedexExplainer(FedexConfig(seed=0)).explain(step)
        metrics = compare_reports(report, report)
        assert metrics["precision_at_k"] == 1.0
        assert metrics["kendall_tau"] == 0.0
        assert metrics["ndcg"] == pytest.approx(1.0)

    def test_sampled_report_metrics_in_range(self, tiny_registry):
        step = get_query(6).build_step(tiny_registry)
        exact = FedexExplainer(FedexConfig(sample_size=None, seed=0)).explain(step)
        sampled = FedexExplainer(FedexConfig(sample_size=500, seed=0)).explain(step)
        metrics = compare_reports(exact, sampled)
        assert 0.0 <= metrics["precision_at_k"] <= 1.0
        assert 0.0 <= metrics["ndcg"] <= 1.0
        assert metrics["kendall_tau"] >= 0.0


class TestSweeps:
    def test_sampling_accuracy_sweep_structure(self, tiny_registry):
        rows = sampling_accuracy_sweep(
            tiny_registry, query_numbers=(6, 21), sample_sizes=(200, 1_000), seed=0
        )
        sizes = {row["sample_size"] for row in rows}
        assert sizes == {200, 1_000}
        means = mean_rows(rows, "sample_size")
        assert len(means) == 2
        assert all(0.0 <= row["precision_at_k"] <= 1.0 for row in means)

    def test_accuracy_improves_or_holds_with_larger_samples(self, tiny_registry):
        rows = sampling_accuracy_sweep(
            tiny_registry, query_numbers=(6, 7, 21), sample_sizes=(100, 2_500), seed=0
        )
        means = {row["sample_size"]: row for row in mean_rows(rows, "sample_size")}
        assert means[2_500]["ndcg"] >= means[100]["ndcg"] - 0.05

    def test_large_sample_equals_exact(self, tiny_registry):
        """A sample larger than the data is exact fedex: perfect accuracy."""
        rows = sampling_accuracy_sweep(
            tiny_registry, query_numbers=(6,), sample_sizes=(1_000_000,), seed=0
        )
        mean = mean_rows(rows, "sample_size")[0]
        assert mean["precision_at_k"] == 1.0
        assert mean["kendall_tau"] == 0.0

    def test_rows_accuracy_sweep_structure(self):
        def registry_factory(row_count: int) -> DatasetRegistry:
            return DatasetRegistry(spotify_rows=500, bank_rows=500, sales_rows=row_count,
                                   products_rows=300, seed=2)

        rows = rows_accuracy_sweep(registry_factory, row_counts=(2_000, 4_000),
                                   query_numbers=(4, 5), sample_size=1_000, seed=0)
        means = mean_rows(rows, "rows")
        assert len(means) == 2
        assert all(0.0 <= row["ndcg"] <= 1.0 for row in means)
