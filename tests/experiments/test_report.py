"""Unit tests for experiment result formatting."""

from __future__ import annotations

from repro.experiments import format_table, pivot_series


class TestFormatTable:
    def test_contains_headers_and_values(self):
        rows = [{"system": "FEDEX", "seconds": 1.234}, {"system": "SeeDB", "seconds": 2.5}]
        text = format_table(rows, title="Runtime")
        assert "Runtime" in text
        assert "system" in text and "seconds" in text
        assert "FEDEX" in text and "2.500" in text

    def test_column_subset_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="Empty")

    def test_none_rendered_as_dash(self):
        text = format_table([{"x": None}])
        assert "-" in text


class TestPivotSeries:
    def test_pivot_long_to_wide(self):
        rows = [
            {"rows": 10, "system": "FEDEX", "seconds": 1.0},
            {"rows": 10, "system": "SeeDB", "seconds": 2.0},
            {"rows": 20, "system": "FEDEX", "seconds": 3.0},
        ]
        wide = pivot_series(rows, index="rows", series="system", value="seconds")
        assert wide[0] == {"rows": 10, "FEDEX": 1.0, "SeeDB": 2.0}
        assert wide[1]["FEDEX"] == 3.0

    def test_index_order_preserved(self):
        rows = [{"k": "b", "s": "x", "v": 1}, {"k": "a", "s": "x", "v": 2}]
        wide = pivot_series(rows, "k", "s", "v")
        assert [row["k"] for row in wide] == ["b", "a"]
