"""Tests of the simulated user studies (Figures 3–6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import InterestingnessOnly, SeeDB
from repro.baselines.fedex_adapter import fedex_system
from repro.experiments import (
    SimulatedJudge,
    run_augmented_baselines_study,
    run_generation_time_study,
    run_interactive_study,
    run_user_study,
)
from repro.experiments.user_study import _labels_match
from repro.workloads import get_query


class TestJudge:
    def test_ground_truth_has_ranking_and_row_sets(self, tiny_registry):
        judge = SimulatedJudge(seed=0)
        truth = judge.ground_truth(get_query(6).build_step(tiny_registry))
        assert truth.column_ranking
        assert truth.row_sets

    def test_fedex_claims_score_higher_than_unaligned_claims(self, tiny_registry):
        judge = SimulatedJudge(seed=0)
        step = get_query(6).build_step(tiny_registry)
        truth = judge.ground_truth(step)
        fedex_artefact = fedex_system(2_000).explain(step, top_k=1)[0]
        io_artefact = InterestingnessOnly().explain(step, top_k=1)[0]
        fedex_scores = judge.score(fedex_artefact, truth)
        io_scores = judge.score(io_artefact, truth)
        assert fedex_scores["insight"] > io_scores["insight"]

    def test_scores_are_on_a_1_to_7_scale(self, tiny_registry):
        judge = SimulatedJudge(seed=0)
        step = get_query(6).build_step(tiny_registry)
        truth = judge.ground_truth(step)
        for artefact in SeeDB().explain(step, top_k=2):
            scores = judge.score(artefact, truth)
            assert all(1.0 <= value <= 7.0 for value in scores.values())

    def test_label_matching(self):
        assert _labels_match("2010s", "2010s")
        assert _labels_match("12", "12.0")
        assert _labels_match("[1960, 1965)", "1962")
        assert not _labels_match("2010s", "1990s")
        assert not _labels_match("[1960, 1965)", "1970")


class TestFigure3:
    @pytest.fixture(scope="class")
    def study_rows(self, tiny_registry):
        notebooks = {"spotify": [6, 21], "bank": [11, 27]}
        return run_user_study(tiny_registry, notebooks=notebooks, seed=0)

    def test_row_structure(self, study_rows):
        assert {"dataset", "system", "coherency", "insight", "usefulness", "average"} <= \
            set(study_rows[0])

    def test_fedex_beats_visualization_only_baselines(self, study_rows):
        averages = {}
        for row in study_rows:
            averages.setdefault(row["system"], []).append(row["average"])
        means = {system: float(np.mean(values)) for system, values in averages.items()}
        assert means["FEDEX"] > means["SeeDB"]
        assert means["FEDEX"] > means["Rath"]
        assert means["FEDEX"] > means["IO"]

    def test_fedex_is_at_least_1_5x_better_than_seedb_and_rath(self, study_rows):
        """The paper reports FEDEX ~1.7x more helpful than the common baselines."""
        averages = {}
        for row in study_rows:
            averages.setdefault(row["system"], []).append(row["average"])
        means = {system: float(np.mean(values)) for system, values in averages.items()}
        baseline_mean = np.mean([means["SeeDB"], means["Rath"]])
        assert means["FEDEX"] / baseline_mean > 1.5

    def test_expert_and_fedex_lead_the_ranking(self, study_rows):
        averages = {}
        for row in study_rows:
            averages.setdefault(row["system"], []).append(row["average"])
        means = {system: float(np.mean(values)) for system, values in averages.items()}
        top_two = sorted(means, key=means.get, reverse=True)[:2]
        assert set(top_two) == {"Expert", "FEDEX"}


class TestFigures4To6:
    def test_generation_time_fedex_is_orders_of_magnitude_faster(self, tiny_registry):
        rows = run_generation_time_study(tiny_registry, notebooks={"spotify": [6]},
                                         sample_size=1_000, seed=0)
        assert rows[0]["expert_seconds"] > 60.0
        assert rows[0]["fedex_seconds"] < 60.0
        assert rows[0]["speedup"] > 10.0

    def test_interactive_study_assisted_finds_more_insights(self, tiny_registry):
        rows = run_interactive_study(tiny_registry, sample_size=1_000, seed=0)
        by_key = {(row["dataset"], row["mode"]): row["insights"] for row in rows}
        for dataset in ("spotify", "bank"):
            assert by_key[(dataset, "fedex-assisted")] > by_key[(dataset, "unassisted")]

    def test_augmented_baselines_still_trail_fedex(self, tiny_registry):
        rows = run_augmented_baselines_study(tiny_registry, seed=0)
        scores = {row["system"]: row["average"] for row in rows}
        assert scores["FEDEX"] > scores.get("SeeDB+text", 0.0)
