"""Tests of the runtime-scaling and sets-of-rows experiment harnesses (Figures 9–11)."""

from __future__ import annotations

import pytest

from repro.baselines import SeeDB
from repro.baselines.fedex_adapter import fedex_system
from repro.datasets import DatasetRegistry
from repro.experiments import (
    average_by,
    column_scaling_sweep,
    row_scaling_sweep,
    sets_of_rows_sweep,
    time_system,
)
from repro.workloads import get_query


class TestTimeSystem:
    def test_returns_seconds(self, tiny_registry):
        step = get_query(6).build_step(tiny_registry)
        seconds = time_system(fedex_system(1_000), step)
        assert seconds is not None and seconds > 0

    def test_unsupported_step_returns_none(self, tiny_registry):
        step = get_query(21).build_step(tiny_registry)
        assert time_system(SeeDB(), step) is None

    def test_timeout_returns_none(self, tiny_registry):
        step = get_query(6).build_step(tiny_registry)
        assert time_system(fedex_system(1_000), step, timeout_seconds=1e-9) is None


class TestColumnScaling:
    def test_sweep_structure(self, tiny_registry):
        rows = column_scaling_sweep(
            tiny_registry, "spotify", query_numbers=(6,), column_counts=(4, 8),
            systems=[fedex_system(1_000, name="FEDEX-Sampling")],
        )
        assert {row["columns"] for row in rows} <= {4, 8}
        assert all(row["system"] == "FEDEX-Sampling" for row in rows)
        assert all(row["seconds"] is None or row["seconds"] > 0 for row in rows)

    def test_queries_from_other_datasets_skipped(self, tiny_registry):
        rows = column_scaling_sweep(tiny_registry, "spotify", query_numbers=(11,),
                                    column_counts=(4,),
                                    systems=[fedex_system(1_000)])
        assert rows == []


class TestRowScaling:
    def test_sweep_structure(self):
        def registry_factory(row_count: int) -> DatasetRegistry:
            return DatasetRegistry(spotify_rows=row_count, bank_rows=300, sales_rows=500,
                                   products_rows=200, seed=3)

        rows = row_scaling_sweep(
            registry_factory, row_counts=(1_000, 2_000), query_numbers=(6,),
            systems=[fedex_system(500, name="FEDEX-Sampling")], include_exact_fedex=True,
        )
        systems = {row["system"] for row in rows}
        assert systems == {"FEDEX", "FEDEX-Sampling"}
        assert {row["rows"] for row in rows} == {1_000, 2_000}

    def test_average_by(self):
        rows = [
            {"rows": 10, "system": "a", "seconds": 1.0},
            {"rows": 10, "system": "a", "seconds": 3.0},
            {"rows": 10, "system": "b", "seconds": None},
        ]
        averaged = average_by(rows, ["rows", "system"])
        by_system = {entry["system"]: entry for entry in averaged}
        assert by_system["a"]["seconds"] == pytest.approx(2.0)
        assert by_system["b"]["seconds"] is None


class TestSetsOfRows:
    def test_sweep_structure(self, tiny_registry):
        rows = sets_of_rows_sweep(tiny_registry, query_numbers=(7,), set_counts=(3, 5, 10),
                                  sample_size=1_000, seed=0)
        assert {row["sets_of_rows"] for row in rows} == {3, 5, 10}
        assert all(row["attribute"] for row in rows)
        assert all(row["best_contribution"] >= 0.0 for row in rows)

    def test_attribute_is_held_fixed(self, tiny_registry):
        rows = sets_of_rows_sweep(tiny_registry, query_numbers=(7,), set_counts=(5, 10),
                                  sample_size=1_000, seed=0)
        attributes = {row["attribute"] for row in rows}
        assert len(attributes) == 1

    def test_explicit_attribute(self, tiny_registry):
        rows = sets_of_rows_sweep(tiny_registry, query_numbers=(7,), set_counts=(5,),
                                  attribute="decade", sample_size=1_000, seed=0)
        assert all(row["attribute"] == "decade" for row in rows)
