"""Tests of the dataset registry and of the skew structure reported in paper §4.1."""

from __future__ import annotations

import pytest

from repro.datasets import DatasetRegistry, small_registry
from repro.errors import DatasetError
from repro.stats import fisher_pearson_skewness


class TestRegistry:
    def test_known_tables(self, tiny_registry):
        names = tiny_registry.table_names()
        for expected in ("spotify", "bank", "products", "sales", "products_sales",
                         "counties", "stores"):
            assert expected in names

    def test_tables_are_cached(self, tiny_registry):
        assert tiny_registry.table("spotify") is tiny_registry.table("spotify")

    def test_case_insensitive_lookup(self, tiny_registry):
        assert tiny_registry.table("Bank") is tiny_registry.table("bank")

    def test_unknown_table_rejected(self, tiny_registry):
        with pytest.raises(DatasetError):
            tiny_registry.table("unknown")

    def test_register_custom_table(self, tiny_registry, tiny_frame):
        tiny_registry.register("custom", tiny_frame)
        assert tiny_registry.table("custom") is tiny_frame

    def test_clear_rebuilds_tables(self):
        registry = DatasetRegistry(spotify_rows=200, bank_rows=200, sales_rows=200,
                                   products_rows=100, seed=0)
        first = registry.table("spotify")
        registry.clear()
        assert registry.table("spotify") is not first

    def test_sizes_respected(self):
        registry = DatasetRegistry(spotify_rows=321, bank_rows=222, sales_rows=150,
                                   products_rows=80, seed=0)
        assert registry.table("spotify").num_rows == 321
        assert registry.table("bank").num_rows == 222
        assert registry.table("sales").num_rows == 150

    def test_small_registry_builds_quickly(self):
        registry = small_registry()
        assert registry.table("bank").num_rows > 0


class TestSkewStructure:
    """The paper reports heavily skewed columns in every dataset (§4.1)."""

    def test_spotify_has_a_heavily_skewed_column(self, spotify_small):
        skews = [
            abs(fisher_pearson_skewness(spotify_small[name].to_float()))
            for name in spotify_small.numeric_columns()
        ]
        assert max(skews) > 2.0

    def test_products_sales_top_skew_is_extreme(self, products_and_sales_small):
        _, sales = products_and_sales_small
        skews = [
            abs(fisher_pearson_skewness(sales[name].to_float()))
            for name in sales.numeric_columns()
        ]
        assert max(skews) > 10.0

    def test_credit_has_moderately_skewed_columns(self, credit_small):
        skews = [
            abs(fisher_pearson_skewness(credit_small[name].to_float()))
            for name in credit_small.numeric_columns()
        ]
        assert max(skews) > 1.0
