"""Unit tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    load_counties,
    load_credit,
    load_products,
    load_products_and_sales,
    load_products_sales_view,
    load_sales,
    load_spotify,
    load_stores,
)
from repro.errors import DatasetError


class TestSpotify:
    def test_schema_has_20_columns(self, spotify_small):
        assert spotify_small.num_columns == 20

    def test_requested_row_count(self):
        assert load_spotify(n_rows=500, seed=0).num_rows == 500

    def test_deterministic_given_seed(self):
        assert load_spotify(300, seed=5) == load_spotify(300, seed=5)

    def test_different_seeds_differ(self):
        assert load_spotify(300, seed=5) != load_spotify(300, seed=6)

    def test_workload_columns_present(self, spotify_small):
        for column in ("popularity", "year", "decade", "loudness", "duration_minutes", "tempo",
                       "danceability", "instrumentalness", "liveness", "key", "mode"):
            assert column in spotify_small

    def test_year_decade_is_many_to_one(self, spotify_small):
        years = spotify_small["year"].tolist()
        decades = spotify_small["decade"].tolist()
        mapping = {}
        for year, decade in zip(years, decades):
            assert mapping.setdefault(year, decade) == decade
        assert len(set(decades)) < len(set(years))

    def test_popularity_bounded(self, spotify_small):
        assert spotify_small["popularity"].min() >= 0
        assert spotify_small["popularity"].max() <= 100

    def test_recent_songs_are_more_popular(self, spotify_small):
        from repro.dataframe import Comparison

        recent = spotify_small.filter(Comparison("year", ">=", 2010))
        older = spotify_small.filter(Comparison("year", "<", 2010))
        assert recent["popularity"].mean() > older["popularity"].mean() + 5

    def test_invalid_row_count_rejected(self):
        with pytest.raises(DatasetError):
            load_spotify(0)


class TestCredit:
    def test_schema_has_21_columns(self, credit_small):
        assert credit_small.num_columns == 21

    def test_workload_columns_present(self, credit_small):
        for column in ("Attrition_Flag", "Total_Count_Change_Q4_vs_Q1", "Customer_Age",
                       "Months_Inactive_Count_Last_Year", "Income_Category", "Credit_Used",
                       "Total_Transitions_Amount", "Marital_Status", "Gender",
                       "Education_Level", "Registered_Products_Count"):
            assert column in credit_small

    def test_churn_rate_close_to_requested(self):
        frame = load_credit(n_rows=5_000, seed=1, churn_rate=0.2)
        churned = frame["Attrition_Flag"].value_counts().get("Attrited Customer", 0)
        assert 0.15 < churned / frame.num_rows < 0.25

    def test_churners_are_less_active(self, credit_small):
        from repro.dataframe import Comparison

        churned = credit_small.filter(Comparison("Attrition_Flag", "==", "Attrited Customer"))
        existing = credit_small.filter(Comparison("Attrition_Flag", "==", "Existing Customer"))
        assert churned["Total_Transactions_Count"].mean() < existing["Total_Transactions_Count"].mean()
        assert churned["Months_Inactive_Count_Last_Year"].mean() > \
            existing["Months_Inactive_Count_Last_Year"].mean()

    def test_invalid_churn_rate_rejected(self):
        with pytest.raises(DatasetError):
            load_credit(100, churn_rate=1.5)


class TestProductsAndSales:
    def test_products_schema(self, products_and_sales_small):
        products, _ = products_and_sales_small
        assert products.num_columns == 16
        assert "item" in products and "vendor" in products and "pack" in products

    def test_sales_schema(self, products_and_sales_small):
        _, sales = products_and_sales_small
        assert sales.num_columns == 17
        for column in ("item", "store", "county", "total", "bottle_quantity", "pack"):
            assert column in sales

    def test_every_sale_references_a_product(self, products_and_sales_small):
        products, sales = products_and_sales_small
        product_items = set(products["item"].tolist())
        assert set(sales["item"].tolist()).issubset(product_items)

    def test_item_to_vendor_is_many_to_one(self, products_and_sales_small):
        _, sales = products_and_sales_small
        mapping = {}
        for item, vendor in zip(sales["item"].tolist(), sales["vendor"].tolist()):
            assert mapping.setdefault(item, vendor) == vendor

    def test_join_view_has_prefixed_columns(self):
        view = load_products_sales_view(n_sales=2_000, n_products=300, seed=3)
        assert "sales_total" in view
        assert "products_pack" in view
        assert "item" in view
        assert view.num_rows == 2_000

    def test_dimension_tables(self):
        counties = load_counties()
        stores = load_stores()
        assert counties.num_rows == 99
        assert "county" in stores
        store_counties = set(stores["county"].tolist())
        assert store_counties.issubset(set(counties["county"].tolist()))

    def test_sales_total_is_heavily_skewed(self, products_and_sales_small):
        from repro.stats import fisher_pearson_skewness

        _, sales = products_and_sales_small
        assert fisher_pearson_skewness(sales["total"].to_float()) > 2.0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(DatasetError):
            load_products(0)
        with pytest.raises(DatasetError):
            load_sales(0)
