"""Unit tests for the RATH-style top-k insight baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import RathInsights
from repro.dataframe import Comparison, DataFrame
from repro.operators import ExploratoryStep, Filter, GroupBy


@pytest.fixture
def groupby_step(spotify_small):
    return ExploratoryStep([spotify_small], GroupBy("decade", {"loudness": ["mean"],
                                                               "popularity": ["mean"]}))


class TestRath:
    def test_produces_top_k_insights(self, groupby_step):
        insights = RathInsights().explain(groupby_step, top_k=3)
        assert 1 <= len(insights) <= 3

    def test_insights_sorted_by_score(self, groupby_step):
        insights = RathInsights().explain(groupby_step, top_k=5)
        scores = [insight.score for insight in insights]
        assert scores == sorted(scores, reverse=True)

    def test_insight_types_recorded(self, groupby_step):
        insights = RathInsights().explain(groupby_step, top_k=5)
        kinds = {insight.details["insight_type"] for insight in insights}
        assert kinds <= {"outstanding #1", "outstanding last", "trend"}

    def test_detects_planted_outlier(self):
        frame = DataFrame({
            "group": np.asarray(["a", "b", "c", "d", "e"], dtype=object),
            "value": np.asarray([1.0, 1.1, 0.9, 1.05, 10.0]),
        })
        step = ExploratoryStep([frame], Filter(Comparison("value", ">", 0)))
        insights = RathInsights().explain(step, top_k=1)
        assert insights[0].highlighted_value == "e"

    def test_detects_trend(self):
        frame = DataFrame({
            "year": np.asarray([2000.0, 2001.0, 2002.0, 2003.0, 2004.0] * 4),
            "value": np.asarray([1.0, 2.0, 3.0, 4.0, 5.0] * 4) + 0.01 * np.arange(20),
        })
        step = ExploratoryStep([frame], Filter(Comparison("value", ">", 0)))
        insights = RathInsights().explain(step, top_k=10)
        assert any(insight.details["insight_type"] == "trend" for insight in insights)

    def test_supports_all_step_kinds(self, groupby_step):
        assert RathInsights().supports(groupby_step)

    def test_max_rows_guard_returns_nothing(self, groupby_step):
        assert RathInsights(max_rows=1).explain(groupby_step) == []

    def test_insights_only_look_at_the_output(self, spotify_small):
        """Rath is output-only: its claims never reference input-only columns."""
        step = ExploratoryStep([spotify_small],
                               GroupBy("decade", {"loudness": ["mean"]}))
        insights = RathInsights().explain(step, top_k=5)
        for insight in insights:
            assert insight.target_column in step.output.column_names
