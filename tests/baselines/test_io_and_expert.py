"""Unit tests for the Interestingness-Only, Expert, and FEDEX-adapter baselines."""

from __future__ import annotations

import pytest

from repro.baselines import ExpertBaseline, FedexSystem, InterestingnessOnly, fedex_system
from repro.core import ExceptionalityMeasure
from repro.dataframe import Comparison
from repro.operators import ExploratoryStep, Filter, GroupBy


@pytest.fixture
def filter_step(spotify_small):
    return ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))


class TestInterestingnessOnly:
    def test_reports_most_interesting_columns(self, filter_step):
        artefacts = InterestingnessOnly().explain(filter_step, top_k=3)
        assert artefacts
        measure = ExceptionalityMeasure()
        scores = {a.target_column: measure.score_step(filter_step, a.target_column)
                  for a in artefacts}
        ranked = sorted(scores.values(), reverse=True)
        assert [scores[a.target_column] for a in artefacts] == ranked

    def test_no_row_set_is_highlighted(self, filter_step):
        artefacts = InterestingnessOnly().explain(filter_step)
        assert all(a.highlighted_value is None for a in artefacts)

    def test_artifacts_have_caption_and_chart(self, filter_step):
        artefacts = InterestingnessOnly().explain(filter_step)
        assert all(a.has_text for a in artefacts)

    def test_groupby_steps_supported(self, spotify_small):
        step = ExploratoryStep([spotify_small], GroupBy("decade", {"loudness": ["mean"]}))
        assert InterestingnessOnly().explain(step)


class TestExpert:
    def test_produces_text_only_narratives(self, filter_step):
        artefacts = ExpertBaseline().explain(filter_step, top_k=2)
        assert artefacts
        assert all(a.has_text and not a.has_visualization for a in artefacts)

    def test_authoring_time_is_minutes_not_milliseconds(self, filter_step):
        expert = ExpertBaseline(authoring_minutes=(5.0, 10.0))
        expert.explain(filter_step)
        assert 5 * 60 <= expert.last_authoring_seconds <= 10 * 60

    def test_narrative_mentions_the_row_set(self, filter_step):
        artefact = ExpertBaseline().explain(filter_step, top_k=1)[0]
        assert artefact.highlighted_value is not None
        assert artefact.highlighted_value in artefact.caption


class TestFedexAdapter:
    def test_wraps_fedex_explanations(self, filter_step):
        artefacts = FedexSystem().explain(filter_step, top_k=2)
        assert artefacts
        assert all(a.is_hybrid for a in artefacts)
        assert all(a.system == "FEDEX" for a in artefacts)

    def test_factory_names(self):
        assert fedex_system().name == "FEDEX"
        assert fedex_system(5_000).name == "FEDEX-Sampling"
        assert fedex_system(5_000, name="custom").name == "custom"

    def test_details_carry_scores(self, filter_step):
        artefact = fedex_system(2_000).explain(filter_step, top_k=1)[0]
        assert "interestingness" in artefact.details
        assert "standardized_contribution" in artefact.details

    def test_claim_tuple(self, filter_step):
        artefact = FedexSystem().explain(filter_step, top_k=1)[0]
        column, value = artefact.claim()
        assert column in filter_step.output.column_names
        assert value is not None
