"""Unit tests for the SeeDB baseline."""

from __future__ import annotations

import pytest

from repro.baselines import SeeDB
from repro.dataframe import Comparison
from repro.operators import ExploratoryStep, Filter, GroupBy


@pytest.fixture
def filter_step(spotify_small):
    return ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))


class TestSeeDB:
    def test_produces_views_for_filter_steps(self, filter_step):
        views = SeeDB().explain(filter_step, top_k=3)
        assert 1 <= len(views) <= 3
        assert all(view.system == "SeeDB" for view in views)

    def test_views_are_visualization_only(self, filter_step):
        views = SeeDB().explain(filter_step)
        assert all(view.has_visualization and not view.has_text for view in views)

    def test_views_sorted_by_utility(self, filter_step):
        views = SeeDB().explain(filter_step, top_k=3)
        utilities = [view.score for view in views]
        assert utilities == sorted(utilities, reverse=True)

    def test_decade_view_ranks_high_for_the_popularity_filter(self, filter_step):
        views = SeeDB().explain(filter_step, top_k=5)
        group_attrs = [view.details["group_attr"] for view in views]
        assert "decade" in group_attrs

    def test_does_not_support_groupby_steps(self, spotify_small):
        step = ExploratoryStep([spotify_small], GroupBy("decade", {"loudness": ["mean"]}))
        system = SeeDB()
        assert not system.supports(step)
        assert system.explain(step) == []

    def test_chart_has_reference_and_target_series(self, filter_step):
        view = SeeDB().explain(filter_step, top_k=1)[0]
        assert view.chart.before_label == "Reference"
        assert view.chart.after_label == "Target"

    def test_high_cardinality_groupings_pruned(self, filter_step):
        views = SeeDB(max_group_cardinality=5).explain(filter_step, top_k=10)
        for view in views:
            group_attr = view.details["group_attr"]
            assert filter_step.primary_input[group_attr].n_unique() <= 5
