"""Trace analysis: critical paths, self times, folding, JSONL round-trips."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FedexConfig
from repro.dataframe.column import Column
from repro.dataframe.frame import DataFrame
from repro.dataframe.predicates import Comparison
from repro.explain import ExplainableDataFrame
from repro.obs.analyze import (
    TraceSummary,
    critical_path,
    folded,
    rollup,
    self_times,
    summarize,
    summarize_jsonl,
)
from repro.obs.trace import Span, Trace, append_jsonl, tracing


def _span(span_id, parent_id, name, wall_s, attrs=None):
    return Span(span_id, parent_id, name, attrs=dict(attrs or {}),
                started_s=0.0, wall_s=wall_s, cpu_s=wall_s / 2)


@pytest.fixture
def known_trace():
    """root(1.0) → a(0.6) → leaf(0.1); root → b(0.3); plus one event."""
    return Trace("t1", [
        _span(1, None, "root", 1.0),
        _span(2, 1, "a", 0.6),
        _span(3, 1, "b", 0.3),
        _span(4, 2, "leaf", 0.1),
        Span(5, 1, "cache.hit", attrs={"count": 7}),
    ])


class TestSelfTimes:
    def test_subtracts_timed_children_only(self, known_trace):
        selves = self_times(known_trace)
        assert selves[1] == pytest.approx(0.1)   # 1.0 - (0.6 + 0.3)
        assert selves[2] == pytest.approx(0.5)   # 0.6 - 0.1
        assert selves[3] == pytest.approx(0.3)
        assert selves[4] == pytest.approx(0.1)
        assert selves[5] == 0.0                  # events carry no time

    def test_parallel_children_clamp_at_zero(self):
        trace = Trace("t", [
            _span(1, None, "batch", 0.5),
            _span(2, 1, "w1", 0.4),
            _span(3, 1, "w2", 0.4),
        ])
        assert self_times(trace)[1] == 0.0


class TestCriticalPath:
    def test_follows_heaviest_children(self, known_trace):
        names = [step.name for step in critical_path(known_trace)]
        assert names == ["root", "a", "leaf"]

    def test_steps_carry_wall_and_self(self, known_trace):
        root = critical_path(known_trace)[0]
        assert root.wall_s == pytest.approx(1.0)
        assert root.self_s == pytest.approx(0.1)

    def test_empty_and_event_only_traces(self):
        assert critical_path(Trace("t", [])) == []
        events = Trace("t", [Span(1, None, "e", attrs={"count": 1})])
        assert critical_path(events) == []

    def test_orphan_parents_become_roots(self):
        # A grafted span whose parent did not travel with it still anchors
        # a path instead of vanishing.
        trace = Trace("t", [_span(7, 99, "orphan", 0.4)])
        assert [step.name for step in critical_path(trace)] == ["orphan"]


class TestRollupAndFolded:
    def test_rollup_groups_by_name(self, known_trace):
        entries = {entry["name"]: entry for entry in rollup(known_trace)}
        assert entries["a"]["self_s"] == pytest.approx(0.5)
        assert entries["cache.hit"]["count"] == 7
        assert entries["cache.hit"]["self_s"] == 0.0
        # Sorted by self time descending.
        assert [e["name"] for e in rollup(known_trace)][0] == "a"

    def test_folded_stacks_merge_and_weight_in_microseconds(self, known_trace):
        lines = dict(line.rsplit(" ", 1) for line in
                     folded(known_trace).splitlines())
        assert int(lines["root"]) == pytest.approx(100000, abs=2)
        assert int(lines["root;a"]) == pytest.approx(500000, abs=2)
        assert int(lines["root;a;leaf"]) == pytest.approx(100000, abs=2)
        assert "cache.hit" not in folded(known_trace)

    def test_summary_bundle(self, known_trace):
        summary = summarize(known_trace)
        assert isinstance(summary, TraceSummary)
        assert summary.total_wall_s == pytest.approx(1.0)
        text = summary.render_text()
        assert "critical path:" in text and "root" in text
        payload = summary.to_dict()
        assert payload["trace_id"] == "t1"
        assert [s["name"] for s in payload["critical_path"]] == ["root", "a", "leaf"]


# ------------------------------------------------------- hypothesis round-trip
@st.composite
def span_trees(draw):
    """A random well-formed span list: ids 1..n, parents always earlier."""
    count = draw(st.integers(min_value=1, max_value=12))
    spans = []
    for span_id in range(1, count + 1):
        parent = (None if span_id == 1
                  else draw(st.integers(min_value=1, max_value=span_id - 1)))
        wall = draw(st.floats(min_value=0.0, max_value=10.0,
                              allow_nan=False, allow_infinity=False))
        is_event = draw(st.booleans()) and span_id > 1
        if is_event:
            spans.append(Span(span_id, parent, f"e{span_id}",
                              attrs={"count": draw(st.integers(1, 50))}))
        else:
            spans.append(_span(span_id, parent, f"s{span_id}", wall))
    return Trace("rt", spans)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(trace=span_trees())
    def test_jsonl_round_trip_preserves_analysis(self, trace):
        restored = Trace.from_jsonl(trace.to_jsonl())
        live, back = summarize(trace), summarize(restored)
        assert [(s.name, s.span_id) for s in back.critical_path] == \
            [(s.name, s.span_id) for s in live.critical_path]
        assert back.rollup == live.rollup
        assert back.folded == live.folded

    def test_summarize_jsonl_over_a_dump(self, tmp_path, known_trace):
        path = str(tmp_path / "traces.jsonl")
        append_jsonl(known_trace, path)
        append_jsonl(Trace("t2", [_span(1, None, "only", 0.2)]), path)
        summaries = summarize_jsonl(path)
        assert [s.trace_id for s in summaries] == ["t1", "t2"]
        assert [s.critical_path[0].name for s in summaries] == ["root", "only"]


# -------------------------------------------------------------- engine wiring
class TestReportTraceSummary:
    def test_traced_report_summarises_its_own_trace(self):
        rng = np.random.default_rng(7)
        frame = DataFrame([
            Column("x", rng.normal(size=600)),
            Column("g", rng.integers(0, 5, size=600).astype(float)),
        ])
        with tracing(True):
            report = ExplainableDataFrame(frame, config=FedexConfig()).filter(
                Comparison("x", ">", 0.0)).explain()
        summary = report.trace_summary()
        assert summary is not None
        assert summary.critical_path[0].name == "explain"
        assert len(summary.critical_path) >= 2
        assert summary.total_wall_s > 0

    def test_untraced_report_returns_none(self):
        rng = np.random.default_rng(7)
        frame = DataFrame([Column("x", rng.normal(size=200))])
        with tracing(False):
            report = ExplainableDataFrame(frame, config=FedexConfig()).filter(
                Comparison("x", ">", 0.0)).explain()
        assert report.trace_summary() is None
