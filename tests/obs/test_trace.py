"""Tracing: span trees, events, activation scoping, shipping, determinism."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.config import FedexConfig
from repro.dataframe.column import Column
from repro.dataframe.frame import DataFrame
from repro.dataframe.predicates import Comparison
from repro.explain import ExplainableDataFrame
from repro.obs.trace import (
    NOOP_TRACER,
    Span,
    Trace,
    Tracer,
    append_jsonl,
    begin_request,
    current_tracer,
    end_request,
    read_traces,
    trace_path,
    tracing,
    tracing_enabled,
)


@pytest.fixture
def frame():
    rng = np.random.default_rng(7)
    return DataFrame([
        Column("x", rng.normal(size=600)),
        Column("g", rng.integers(0, 5, size=600).astype(float)),
    ])


# --------------------------------------------------------------------- tracer
class TestTracer:
    def test_spans_nest_by_thread_stack(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        trace = tracer.finish()
        (outer,) = trace.find("outer")
        (inner,) = trace.find("inner")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert trace.children(outer) == [inner]

    def test_span_measures_wall_and_cpu(self):
        tracer = Tracer()
        with tracer.span("work"):
            sum(range(10000))
        (span,) = tracer.finish().find("work")
        assert span.wall_s > 0
        assert span.cpu_s >= 0

    def test_span_attrs_and_updates(self):
        tracer = Tracer()
        with tracer.span("work", rows=10) as handle:
            handle.set("phase", "b")
            handle.add("hits")
            handle.add("hits", 2)
        (span,) = tracer.finish().find("work")
        assert span.attrs == {"rows": 10, "phase": "b", "hits": 3}

    def test_exception_marks_the_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("boom")
        (span,) = tracer.finish().find("work")
        assert span.attrs["error"] == "RuntimeError"

    def test_explicit_parent_crosses_threads(self):
        tracer = Tracer()
        with tracer.span("submit") as handle:
            parent = handle.span

            def worker() -> None:
                with tracer.span("pool-work", parent=parent):
                    pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        trace = tracer.finish()
        (work,) = trace.find("pool-work")
        assert work.parent_id == parent.span_id

    def test_events_aggregate_by_parent_name_labels(self):
        tracer = Tracer()
        with tracer.span("request"):
            for _ in range(5):
                tracer.event("cache.lookup", labels={"outcome": "hit"})
            tracer.event("cache.lookup", labels={"outcome": "miss"}, n=2)
            tracer.event("scan.mask", chunks_pruned=3)
            tracer.event("scan.mask", chunks_pruned=4)
        trace = tracer.finish()
        lookups = {span.attrs["outcome"]: span.attrs["count"]
                   for span in trace.find("cache.lookup")}
        assert lookups == {"hit": 5, "miss": 2}
        (mask,) = trace.find("scan.mask")
        assert mask.attrs["count"] == 2
        assert mask.attrs["chunks_pruned"] == 7
        assert mask.is_event

    def test_add_span_records_pre_measured_work(self):
        tracer = Tracer()
        with tracer.span("request") as handle:
            tracer.add_span("batch", parent=handle.span,
                            started_pc=tracer._origin + 1.0,
                            wall_s=0.25, pairs=4)
        trace = tracer.finish()
        (batch,) = trace.find("batch")
        assert batch.wall_s == 0.25
        assert batch.started_s == pytest.approx(1.0)
        assert batch.attrs["pairs"] == 4

    def test_attach_spans_remaps_ids_and_grafts_orphans(self):
        worker = Tracer()
        with worker.span("worker.batch"):
            with worker.span("worker.pair"):
                pass
        shipped = worker.export()

        parent = Tracer()
        with parent.span("request") as handle:
            anchor = parent.add_span("process.batch", parent=handle.span)
            parent.attach_spans(shipped, parent=anchor)
        trace = parent.finish()
        (batch,) = trace.find("worker.batch")
        (pair,) = trace.find("worker.pair")
        assert batch.parent_id == anchor.span_id
        assert pair.parent_id == batch.span_id
        # Remapped ids are unique across the whole trace.
        ids = [span.span_id for span in trace.spans]
        assert len(ids) == len(set(ids))

    def test_attach_empty_payload_is_a_noop(self):
        tracer = Tracer()
        tracer.attach_spans([], parent=None)
        assert tracer.finish().spans == []

    def test_concurrent_recording_is_exact(self):
        tracer = Tracer()
        threads = 6
        per_thread = 300
        barrier = threading.Barrier(threads)

        def hammer() -> None:
            barrier.wait()
            for _ in range(per_thread):
                with tracer.span("work"):
                    pass

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        trace = tracer.finish()
        assert len(trace.find("work")) == threads * per_thread
        ids = [span.span_id for span in trace.spans]
        assert len(ids) == len(set(ids))

    def test_noop_tracer_is_inert(self):
        assert NOOP_TRACER.enabled is False
        with NOOP_TRACER.span("anything", rows=1) as handle:
            handle.set("k", "v")
            handle.add("n")
        NOOP_TRACER.event("cache.lookup", labels={"outcome": "hit"})
        NOOP_TRACER.attach_spans([{"span_id": 1, "name": "x"}])
        assert NOOP_TRACER.export() == []
        assert NOOP_TRACER.current_span() is None


# ---------------------------------------------------------------------- trace
class TestTrace:
    def build(self) -> Trace:
        tracer = Tracer()
        with tracer.span("explain", backend="incremental"):
            with tracer.span("phase1.interestingness"):
                pass
            tracer.event("cache.lookup", labels={"outcome": "hit"}, n=3)
        return tracer.finish()

    def test_render_text_tree(self):
        text = self.build().render_text()
        lines = text.splitlines()
        assert lines[0].startswith("trace ")
        assert lines[1].startswith("  explain ")
        assert "{backend=incremental}" in lines[1]
        assert lines[2].startswith("    phase1.interestingness ")
        assert "cache.lookup ×3" in text

    def test_span_names_and_total_wall(self):
        trace = self.build()
        assert trace.span_names()[0] == "explain"
        assert trace.total_wall("explain") == trace.find("explain")[0].wall_s

    def test_dict_roundtrip(self):
        trace = self.build()
        back = Trace.from_dicts(trace.to_dicts())
        assert back.trace_id == trace.trace_id
        assert back.to_dicts() == trace.to_dicts()

    def test_jsonl_roundtrip(self):
        trace = self.build()
        back = Trace.from_jsonl(trace.to_jsonl())
        assert back.to_dicts() == trace.to_dicts()

    def test_from_dicts_rejects_mixed_traces(self):
        a = self.build().to_dicts()
        b = self.build().to_dicts()
        with pytest.raises(ValueError, match="multiple traces"):
            Trace.from_dicts(a + b)

    def test_file_append_and_read(self, tmp_path):
        path = str(tmp_path / "traces.jsonl")
        first, second = self.build(), self.build()
        append_jsonl(first, path)
        append_jsonl(second, path)
        loaded = read_traces(path)
        assert [trace.trace_id for trace in loaded] == [
            first.trace_id, second.trace_id]
        assert loaded[0].to_dicts() == first.to_dicts()


# ----------------------------------------------------------------- activation
class TestActivation:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not tracing_enabled()
        assert current_tracer() is NOOP_TRACER

    @pytest.mark.parametrize("value", ["0", "false", "no", "off", ""])
    def test_falsy_env_values_disable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE", value)
        assert not tracing_enabled()
        assert trace_path() is None

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_truthy_flags_enable_without_a_path(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE", value)
        assert tracing_enabled()
        assert trace_path() is None

    def test_path_value_enables_and_names_the_dump(self, monkeypatch, tmp_path):
        dump = str(tmp_path / "traces.jsonl")
        monkeypatch.setenv("REPRO_TRACE", dump)
        assert tracing_enabled()
        assert trace_path() == dump

    def test_tracing_context_beats_the_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        with tracing(False):
            assert not tracing_enabled()
            with tracing(True):  # innermost wins
                assert tracing_enabled()
            assert not tracing_enabled()
        assert tracing_enabled()

    def test_begin_request_noop_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        tracer, token = begin_request()
        assert tracer is NOOP_TRACER and token is None
        assert end_request(tracer, token) is None

    def test_begin_request_activates_and_end_finishes(self):
        with tracing(True):
            tracer, token = begin_request()
            assert tracer.enabled and token is not None
            assert current_tracer() is tracer
            with tracer.span("request"):
                pass
            trace = end_request(tracer, token)
        assert current_tracer() is NOOP_TRACER
        assert trace is not None and trace.find("request")

    def test_nested_request_reuses_the_outer_tracer(self):
        with tracing(True):
            outer, outer_token = begin_request()
            inner, inner_token = begin_request()
            assert inner is outer and inner_token is None
            assert end_request(inner, inner_token) is None
            assert end_request(outer, outer_token) is not None

    def test_end_request_appends_to_the_env_dump(self, monkeypatch, tmp_path):
        dump = str(tmp_path / "traces.jsonl")
        monkeypatch.setenv("REPRO_TRACE", dump)
        tracer, token = begin_request()
        with tracer.span("request"):
            pass
        end_request(tracer, token)
        (loaded,) = read_traces(dump)
        assert loaded.find("request")

    def test_unwritable_dump_path_never_fails_the_request(self, monkeypatch,
                                                          tmp_path):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "no" / "such" / "dir.jsonl"))
        tracer, token = begin_request()
        trace = end_request(tracer, token)
        assert trace is not None  # the OSError was swallowed


# ----------------------------------------------------------- engine integration
class TestEngineIntegration:
    def test_traced_explain_carries_the_phase_tree(self, frame):
        with tracing(True):
            report = ExplainableDataFrame(frame, config=FedexConfig()).filter(
                Comparison("x", ">", 0.0)).explain()
        assert report.trace is not None
        names = report.trace.span_names()
        for phase in ("explain", "phase1.interestingness", "phase2.partitioning",
                      "phase3.contribution", "phase4.skyline",
                      "phase5.visualization"):
            assert phase in names
        (root,) = report.trace.find("explain")
        phases = report.trace.children(root)
        assert [span.name for span in phases] == [
            "phase1.interestingness", "phase2.partitioning",
            "phase3.contribution", "phase4.skyline", "phase5.visualization"]

    def test_untraced_explain_has_no_trace(self, frame):
        with tracing(False):
            report = ExplainableDataFrame(frame, config=FedexConfig()).filter(
                Comparison("x", ">", 0.0)).explain()
        assert report.trace is None

    def test_tracing_changes_nothing_but_the_trace(self, frame):
        wrapped = ExplainableDataFrame(frame, config=FedexConfig()).filter(
            Comparison("x", ">", 0.0))
        with tracing(False):
            untraced = wrapped.explain()
        with tracing(True):
            traced = wrapped.explain()
        assert traced.trace is not None and untraced.trace is None
        assert {c.key(): (c.contribution, c.standardized_contribution)
                for c in traced.all_candidates} == {
            c.key(): (c.contribution, c.standardized_contribution)
            for c in untraced.all_candidates}
        assert [e.render_text() for e in traced.explanations] == [
            e.render_text() for e in untraced.explanations]


# ------------------------------------------------------------ concurrent dumps
class TestConcurrentDump:
    def test_threads_appending_jsonl_stay_line_atomic(self, tmp_path):
        """Many threads dumping traces into one file: every line parses,
        every trace regroups intact — no torn or interleaved spans."""
        path = str(tmp_path / "traces.jsonl")
        barrier = threading.Barrier(8)
        errors = []

        def worker(worker_id):
            try:
                barrier.wait(5)
                for i in range(25):
                    tracer = Tracer()
                    tracer.trace_id = f"w{worker_id}-{i}"
                    with tracer.span("explain", worker=worker_id):
                        with tracer.span("phase3.contribution"):
                            pass
                        tracer.event("cache.hit", n=i)
                    append_jsonl(tracer.finish(), path)
            except Exception as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert errors == []

        import json
        with open(path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 8 * 25 * 3  # 2 spans + 1 event per trace
        for line in lines:
            json.loads(line)  # every single line is intact JSON

        traces = {trace.trace_id: trace for trace in read_traces(path)}
        assert len(traces) == 8 * 25
        for worker_id in range(8):
            for i in range(25):
                trace = traces[f"w{worker_id}-{i}"]
                assert [span.name for span in trace.spans] == [
                    "explain", "phase3.contribution", "cache.hit"]
