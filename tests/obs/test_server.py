"""The observability HTTP endpoint: routes, payloads, lifecycle."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.export import TraceRing
from repro.obs.metrics import (
    MetricsRegistry,
    validate_prometheus_text,
)
from repro.obs.server import (
    OBS_PORT_ENV,
    PROMETHEUS_CONTENT_TYPE,
    ObservabilityServer,
)
from repro.obs.trace import Tracer


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read()


def _trace(names=("explain", "phase3.contribution")):
    tracer = Tracer()
    with tracer.span(names[0]):
        for name in names[1:]:
            with tracer.span(name):
                pass
    return tracer.finish()


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("repro_requests_total", "requests").inc(3)
    registry.histogram("repro_latency_seconds", "latency").observe(0.2)
    return registry


class TestRoutes:
    def test_metrics_prometheus_text(self, registry):
        with ObservabilityServer(metrics_text=registry.render_text) as server:
            status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        families = validate_prometheus_text(body.decode("utf-8"))
        assert families["repro_requests_total"] == "counter"
        assert families["repro_latency_seconds"] == "histogram"

    def test_healthz_merges_custom_document(self):
        ring = TraceRing()
        ring.add(_trace())
        server = ObservabilityServer(
            ring=ring, health=lambda: {"tenants": 2}).start()
        try:
            status, headers, body = _get(server.url + "/healthz")
        finally:
            server.close()
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["traces"] == 1
        assert payload["tenants"] == 2
        assert payload["uptime_s"] >= 0

    def test_traces_most_recent_first_with_critical_path(self):
        ring = TraceRing()
        ring.add(_trace(("first",)))
        ring.add(_trace(("second", "child")))
        with ObservabilityServer(ring=ring) as server:
            _, _, body = _get(server.url + "/traces")
        payload = json.loads(body)
        assert payload["count"] == 2
        assert [t["root"] for t in payload["traces"]] == ["second", "first"]
        steps = [step["name"] for step in payload["traces"][0]["critical_path"]]
        assert steps == ["second", "child"]
        assert "spans" not in payload["traces"][0]

    def test_traces_limit_and_spans_params(self):
        ring = TraceRing()
        for _ in range(3):
            ring.add(_trace())
        with ObservabilityServer(ring=ring) as server:
            _, _, body = _get(server.url + "/traces?limit=1&spans=1")
        payload = json.loads(body)
        assert payload["count"] == 1
        (document,) = payload["traces"]
        assert document["span_count"] == len(document["spans"]) == 2

    def test_traces_limit_clamps_negative_to_zero(self):
        ring = TraceRing()
        for _ in range(8):
            ring.add(_trace())
        with ObservabilityServer(ring=ring) as server:
            _, _, body = _get(server.url + "/traces?limit=-5")
        payload = json.loads(body)
        # A negative limit means "nothing", never Python's "drop the last
        # five" slice semantics — clamped inside _int_param itself now, so
        # every future call site inherits the guard.
        assert payload["count"] == 0
        assert payload["traces"] == []

    def test_traces_limit_clamped_to_cap(self):
        from repro.obs.server import MAX_TRACE_LIMIT

        ring = TraceRing()
        ring.add(_trace())
        with ObservabilityServer(ring=ring) as server:
            status, _, body = _get(
                server.url + f"/traces?limit={MAX_TRACE_LIMIT * 1000}")
        assert status == 200
        assert json.loads(body)["count"] == 1  # clamped, served, no error

    @pytest.mark.parametrize("query", ["limit=abc", "spans=xyz", "limit=1.5"])
    def test_non_numeric_params_are_400(self, query):
        ring = TraceRing()
        ring.add(_trace())
        with ObservabilityServer(ring=ring) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/traces?" + query)
            assert excinfo.value.code == 400
            payload = json.loads(excinfo.value.read())
            assert "must be an integer" in payload["error"]
            # The server keeps serving after the rejected request.
            _, _, body = _get(server.url + "/traces")
            assert json.loads(body)["count"] == 1

    def test_unknown_path_is_json_404(self):
        with ObservabilityServer() as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/nope")
            assert excinfo.value.code == 404
            payload = json.loads(excinfo.value.read())
        assert "/metrics" in payload["paths"]

    def test_broken_metrics_callback_is_a_500_not_a_crash(self):
        def boom():
            raise RuntimeError("registry on fire")

        with ObservabilityServer(metrics_text=boom) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/metrics")
            assert excinfo.value.code == 500
            # The process keeps serving after a failed scrape.
            status, _, _ = _get(server.url + "/healthz")
            assert status == 200


class TestLifecycle:
    def test_ephemeral_port_and_url(self):
        server = ObservabilityServer().start()
        try:
            assert server.port > 0
            assert server.url == f"http://127.0.0.1:{server.port}"
        finally:
            server.close()

    def test_env_port_zero_means_ephemeral(self, monkeypatch):
        monkeypatch.setenv(OBS_PORT_ENV, "0")
        server = ObservabilityServer().start()
        try:
            assert server.port > 0
        finally:
            server.close()

    def test_garbage_env_port_falls_back(self, monkeypatch):
        monkeypatch.setenv(OBS_PORT_ENV, "not-a-port")
        server = ObservabilityServer()
        assert server.port == 0

    def test_close_is_idempotent_and_releases_the_socket(self):
        server = ObservabilityServer().start()
        port = server.port
        server.close()
        server.close()
        with pytest.raises(urllib.error.URLError):
            _get(f"http://127.0.0.1:{port}/healthz", timeout=0.5)

    def test_start_is_idempotent(self):
        server = ObservabilityServer().start()
        try:
            assert server.start() is server
        finally:
            server.close()

    def test_concurrent_scrapes(self, registry):
        errors = []

        def scrape(url):
            try:
                status, _, body = _get(url)
                assert status == 200 and b"repro_requests_total" in body
            except Exception as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        with ObservabilityServer(metrics_text=registry.render_text) as server:
            threads = [threading.Thread(target=scrape,
                                        args=(server.url + "/metrics",))
                       for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(5)
        assert errors == []
