"""The export tier: OTLP shapes, sinks, the bounded queue, retry, env wiring."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs.export import (
    FileSink,
    HTTPSink,
    MetricsExporter,
    SpanExporter,
    TraceRing,
    ensure_env_exporter,
    metrics_to_otlp,
    resolve_sink,
    spans_payload,
    trace_to_otlp,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    Tracer,
    add_trace_consumer,
    begin_request,
    end_request,
    remove_trace_consumer,
    tracing,
)


def _sample_trace():
    tracer = Tracer()
    with tracer.span("explain", tenant="a"):
        with tracer.span("phase3.contribution"):
            pass
        tracer.event("cache.hit", n=3)
    return tracer.finish()


def _drain(exporter, timeout_s=5.0):
    assert exporter.flush(timeout_s), f"exporter did not drain: {exporter.stats()}"


# ----------------------------------------------------------------- OTLP shape
class TestOtlpShapes:
    def test_trace_ids_are_hex_and_sized(self):
        trace = _sample_trace()
        entry = trace_to_otlp(trace)
        spans = entry["scopeSpans"][0]["spans"]
        for span in spans:
            assert len(span["traceId"]) == 32
            int(span["traceId"], 16)
            assert len(span["spanId"]) == 16
            int(span["spanId"], 16)

    def test_parent_links_and_times(self):
        trace = _sample_trace()
        spans = trace_to_otlp(trace)["scopeSpans"][0]["spans"]
        by_name = {span["name"]: span for span in spans}
        root = by_name["explain"]
        child = by_name["phase3.contribution"]
        assert "parentSpanId" not in root
        assert child["parentSpanId"] == root["spanId"]
        for span in spans:
            assert int(span["endTimeUnixNano"]) >= int(span["startTimeUnixNano"])
        # origin_epoch anchors the root near "now", not 1970.
        assert int(root["startTimeUnixNano"]) > 1e18

    def test_attributes_are_anyvalue_wrapped(self):
        trace = _sample_trace()
        spans = trace_to_otlp(trace)["scopeSpans"][0]["spans"]
        root = next(span for span in spans if span["name"] == "explain")
        attrs = {item["key"]: item["value"] for item in root["attributes"]}
        assert attrs["tenant"] == {"stringValue": "a"}
        event = next(span for span in spans if span["name"] == "cache.hit")
        attrs = {item["key"]: item["value"] for item in event["attributes"]}
        assert attrs["count"] == {"intValue": "3"}

    def test_batch_payload_is_json_serialisable(self):
        payload = spans_payload([_sample_trace(), _sample_trace()])
        parsed = json.loads(json.dumps(payload))
        assert len(parsed["resourceSpans"]) == 2

    def test_metrics_histogram_shape(self):
        registry = MetricsRegistry()
        family = registry.histogram("repro_y_seconds", "lat", buckets=(1.0, 2.0))
        family.observe(0.5)
        registry.counter("repro_x_total", labelnames=("t",)).labels(t="a").inc(2)
        entry = metrics_to_otlp(registry)
        metrics = {m["name"]: m for m in entry["scopeMetrics"][0]["metrics"]}
        histogram = metrics["repro_y_seconds"]["histogram"]["dataPoints"][0]
        assert len(histogram["bucketCounts"]) == len(histogram["explicitBounds"]) + 1
        assert histogram["count"] == "1"
        total = metrics["repro_x_total"]["sum"]
        assert total["isMonotonic"] is True
        assert total["dataPoints"][0]["asDouble"] == 2.0
        json.dumps(entry)

    def test_collector_samples_export_as_gauges(self):
        registry = MetricsRegistry()
        registry.register_collector("mod", lambda: [
            ("repro_mod_total", "counter", "", 4.0, {"shard": "s"})])
        entry = metrics_to_otlp(registry)
        metrics = {m["name"]: m for m in entry["scopeMetrics"][0]["metrics"]}
        assert metrics["repro_mod_total"]["gauge"]["dataPoints"][0]["asDouble"] == 4.0


# ---------------------------------------------------------------------- sinks
class TestSinks:
    def test_resolve_sink_dispatch(self, tmp_path):
        assert isinstance(resolve_sink("http://collector:4318/v1/traces"), HTTPSink)
        assert isinstance(resolve_sink(str(tmp_path / "out.jsonl")), FileSink)
        def sink(payload):
            pass

        assert resolve_sink(sink) is sink

    def test_file_sink_appends_jsonl(self, tmp_path):
        sink = FileSink(tmp_path / "out.jsonl")
        sink({"a": 1})
        sink({"b": 2})
        lines = (tmp_path / "out.jsonl").read_text().splitlines()
        assert [json.loads(line) for line in lines] == [{"a": 1}, {"b": 2}]


# ------------------------------------------------------------------- exporter
class TestSpanExporter:
    def test_round_trip_through_file_sink(self, tmp_path):
        path = tmp_path / "otlp.jsonl"
        with SpanExporter(str(path), flush_interval_s=0.02) as exporter:
            for _ in range(3):
                assert exporter.export(_sample_trace())
            _drain(exporter)
        names = []
        for line in path.read_text().splitlines():
            payload = json.loads(line)
            for entry in payload["resourceSpans"]:
                for scope in entry["scopeSpans"]:
                    names.extend(span["name"] for span in scope["spans"])
        assert names.count("explain") == 3

    def test_batches_collapse_queued_items(self):
        batches = []
        gate = threading.Event()

        def sink(payload):
            gate.wait(5)
            batches.append(len(payload["resourceSpans"]))

        exporter = SpanExporter(sink, queue_max=64, batch_max=64,
                                flush_interval_s=0.02)
        # First item occupies the worker inside the gated sink; the rest
        # pile up in the queue and must flush as one batch.
        exporter.export(_sample_trace())
        time.sleep(0.05)
        for _ in range(5):
            exporter.export(_sample_trace())
        gate.set()
        _drain(exporter)
        exporter.close()
        assert sum(batches) == 6
        assert max(batches) >= 5

    def test_full_queue_drops_and_counts_without_blocking(self):
        stall = threading.Event()
        exporter = SpanExporter(lambda payload: stall.wait(30),
                                queue_max=2, flush_interval_s=0.02,
                                retry_max=0)
        time.sleep(0.05)  # let the worker pick up the first stalled batch
        started = time.perf_counter()
        results = [exporter.export(_sample_trace()) for _ in range(20)]
        elapsed = time.perf_counter() - started
        assert elapsed < 0.5, "submit must never block on a stalled sink"
        stats = exporter.stats()
        assert results.count(False) == stats["dropped"]
        # 20 submits against a 2-slot queue: at most a couple ride along in
        # the worker's first (stalled) batch, everything else must drop.
        assert stats["dropped"] >= 15
        stall.set()
        exporter.close()

    def test_retry_with_backoff_then_success(self):
        attempts = []

        def flaky(payload):
            attempts.append(time.perf_counter())
            if len(attempts) < 3:
                raise OSError("collector down")

        exporter = SpanExporter(flaky, retry_max=3, backoff_base_s=0.01,
                                flush_interval_s=0.02)
        assert exporter.export(_sample_trace())
        _drain(exporter)
        exporter.close()
        stats = exporter.stats()
        assert len(attempts) == 3
        assert stats["retries"] == 2
        assert stats["exported"] == 1
        assert stats["dropped"] == 0
        # Exponential spacing: the second gap is at least as long as the first.
        assert (attempts[2] - attempts[1]) >= (attempts[1] - attempts[0]) * 0.5

    def test_exhausted_retries_drop_the_batch(self):
        def broken(payload):
            raise OSError("collector gone")

        exporter = SpanExporter(broken, retry_max=1, backoff_base_s=0.001,
                                flush_interval_s=0.01)
        exporter.export(_sample_trace())
        _drain(exporter)
        exporter.close()
        stats = exporter.stats()
        assert stats["dropped"] == 1
        assert stats["exported"] == 0
        assert stats["retries"] == 1

    def test_closed_exporter_drops(self):
        exporter = SpanExporter(lambda payload: None)
        exporter.close()
        assert exporter.export(_sample_trace()) is False
        assert exporter.stats()["dropped"] == 1


class TestMetricsExporter:
    def test_push_ships_every_registry(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("repro_a_total").inc(1)
        second.counter("repro_b_total").inc(2)
        payloads = []
        exporter = MetricsExporter(payloads.append, registries=[first, second],
                                   flush_interval_s=0.02)
        assert exporter.push()
        _drain(exporter)
        exporter.close()
        (payload,) = payloads
        names = [metric["name"]
                 for entry in payload["resourceMetrics"]
                 for scope in entry["scopeMetrics"]
                 for metric in scope["metrics"]]
        assert "repro_a_total" in names and "repro_b_total" in names

    def test_periodic_push(self):
        payloads = []
        registry = MetricsRegistry()
        registry.counter("repro_a_total").inc(1)
        exporter = MetricsExporter(payloads.append, registries=[registry],
                                   flush_interval_s=0.01)
        exporter.start_periodic(0.02)
        time.sleep(0.15)
        exporter.close()
        assert len(payloads) >= 2


# ----------------------------------------------------------------- trace ring
class TestTraceRing:
    def test_bounded_most_recent_first(self):
        ring = TraceRing(capacity=2)
        traces = [_sample_trace() for _ in range(3)]
        for trace in traces:
            ring.add(trace)
        kept = ring.traces()
        assert len(ring) == 2
        assert [t.trace_id for t in kept] == [traces[2].trace_id,
                                              traces[1].trace_id]

    def test_clear(self):
        ring = TraceRing()
        ring.add(_sample_trace())
        ring.clear()
        assert len(ring) == 0


# ------------------------------------------------------------- trace consumers
class TestTraceConsumers:
    def test_consumer_sees_every_owned_trace(self):
        seen = []
        add_trace_consumer("test-consumer", seen.append)
        try:
            with tracing(True):
                tracer, token = begin_request()
                with tracer.span("explain"):
                    pass
                trace = end_request(tracer, token)
            assert [t.trace_id for t in seen] == [trace.trace_id]
        finally:
            remove_trace_consumer("test-consumer")

    def test_broken_consumer_never_fails_the_request(self):
        add_trace_consumer("broken", lambda trace: 1 / 0)
        try:
            with tracing(True):
                tracer, token = begin_request()
                with tracer.span("explain"):
                    pass
                assert end_request(tracer, token) is not None
        finally:
            remove_trace_consumer("broken")

    def test_env_exporter_installs_and_retires(self, tmp_path, monkeypatch):
        path = tmp_path / "otlp.jsonl"
        monkeypatch.setenv("REPRO_OTLP_SINK", str(path))
        exporter = ensure_env_exporter()
        assert exporter is not None
        assert ensure_env_exporter() is exporter  # idempotent
        with tracing(True):
            tracer, token = begin_request()
            with tracer.span("explain"):
                pass
            end_request(tracer, token)
        _drain(exporter)
        assert "explain" in path.read_text()
        monkeypatch.delenv("REPRO_OTLP_SINK")
        assert ensure_env_exporter() is None
