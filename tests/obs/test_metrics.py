"""The metrics registry: exactness under contention, quantiles, exposition."""

from __future__ import annotations

import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    capture,
    default_buckets,
    namespace_metric,
    registry_delta,
    render_registries,
    validate_prometheus_text,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


# ------------------------------------------------------------------- families
class TestFamilies:
    def test_get_or_create_returns_the_same_family(self, registry):
        first = registry.counter("repro_x_total", "help")
        second = registry.counter("repro_x_total")
        assert first is second

    def test_kind_conflict_is_rejected(self, registry):
        registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x_total")

    def test_labelname_conflict_is_rejected(self, registry):
        registry.counter("repro_x_total", labelnames=("tenant",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("repro_x_total", labelnames=("shard",))

    def test_invalid_names_are_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("kebab-case")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("repro_ok_total", labelnames=("bad-label",))

    def test_label_key_requires_exact_label_set(self, registry):
        family = registry.counter("repro_x_total", labelnames=("tenant",))
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(user="alice")
        with pytest.raises(ValueError, match="takes labels"):
            family.labels()

    def test_labeled_children_are_independent(self, registry):
        family = registry.counter("repro_x_total", labelnames=("tenant",))
        family.labels(tenant="a").inc(2)
        family.labels(tenant="b").inc(5)
        assert family.get(tenant="a").value == 2
        assert family.get(tenant="b").value == 5
        assert family.get(tenant="c") is None
        assert family.total() == 7
        assert family.label_values() == [("a",), ("b",)]


# ------------------------------------------------------------------ primitives
class TestPrimitives:
    def test_counter_rejects_negative(self, registry):
        family = registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="only go up"):
            family.inc(-1)

    def test_gauge_set_max_is_a_running_maximum(self, registry):
        gauge = registry.gauge("repro_x")
        gauge.set_max(3.0)
        gauge.set_max(1.0)
        assert gauge.value == 3.0
        gauge.set_max(7.5)
        assert gauge.value == 7.5

    def test_gauge_inc_dec(self, registry):
        gauge = registry.gauge("repro_x")
        gauge.inc(4)
        gauge.dec(1.5)
        assert gauge.value == 2.5

    def test_histogram_sum_count_mean(self, registry):
        histogram = registry.histogram("repro_x_seconds").labels()
        for value in (0.1, 0.2, 0.3):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.6)
        assert histogram.mean == pytest.approx(0.2)

    def test_histogram_rejects_unsorted_bounds(self, registry):
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("repro_x_seconds", buckets=(2.0, 1.0)).labels()

    def test_quantile_range_is_validated(self, registry):
        histogram = registry.histogram("repro_x_seconds").labels()
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_empty_histogram_quantiles_are_zero(self, registry):
        histogram = registry.histogram("repro_x_seconds").labels()
        assert histogram.quantile(0.5) == 0.0
        assert histogram.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_reset_zeroes_every_series(self, registry):
        registry.counter("repro_a_total").inc(3)
        registry.gauge("repro_b").set(9)
        registry.histogram("repro_c_seconds").observe(0.5)
        registry.reset()
        assert registry.counter("repro_a_total").value == 0
        assert registry.gauge("repro_b").value == 0
        assert registry.histogram("repro_c_seconds").labels().count == 0


# --------------------------------------------------------- histogram accuracy
class TestHistogramQuantiles:
    def test_log_buckets_cover_microseconds_to_an_hour(self):
        buckets = default_buckets()
        assert len(buckets) == 33
        assert buckets[0] == pytest.approx(1e-6)
        assert buckets[-1] > 3600
        assert list(buckets) == sorted(buckets)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(min_value=1e-6, max_value=4000.0,
                              allow_nan=False), min_size=1, max_size=200))
    def test_quantile_within_one_log_bucket_of_truth(self, values):
        # The interpolated quantile can never leave the bucket holding the
        # true order statistic: it is bounded by the bucket's bounds, which
        # for log-2 buckets means within 2x of the exact value.
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_x_seconds").labels()
        for value in values:
            histogram.observe(value)
        exact = sorted(values)[min(len(values) - 1,
                                   max(0, math.ceil(0.95 * len(values)) - 1))]
        estimate = histogram.quantile(0.95)
        assert estimate <= exact * 2.0 + 1e-12
        assert estimate >= exact / 2.0 - 1e-12

    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=1e-6, max_value=4000.0, allow_nan=False))
    def test_boundary_value_lands_at_or_below_its_bucket(self, value):
        # bisect_left: an observation exactly on a bound is counted in that
        # bound's bucket (le semantics), never the next one up.
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_x_seconds").labels()
        histogram.observe(value)
        winning = next(i for i, c in enumerate(histogram.counts) if c)
        assert value <= histogram.bounds[winning]
        if winning > 0:
            assert value > histogram.bounds[winning - 1]

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(min_value=1e-6, max_value=4000.0,
                              allow_nan=False), min_size=1, max_size=100),
           st.floats(min_value=0.0, max_value=1.0))
    def test_quantiles_are_monotone_and_bounded(self, values, q):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_x_seconds").labels()
        for value in values:
            histogram.observe(value)
        estimate = histogram.quantile(q)
        assert 0.0 <= estimate <= histogram.bounds[-1]
        assert estimate <= histogram.quantile(1.0) + 1e-12

    def test_overflow_observations_report_the_top_bound(self, registry):
        histogram = registry.histogram("repro_x_seconds",
                                       buckets=(1.0, 2.0)).labels()
        histogram.observe(100.0)
        assert histogram.quantile(0.99) == 2.0

    def test_family_aggregate_merges_children(self, registry):
        family = registry.histogram("repro_x_seconds", labelnames=("tenant",))
        family.labels(tenant="a").observe(0.010)
        family.labels(tenant="b").observe(0.010)
        family.labels(tenant="b").observe(0.010)
        merged = family.aggregate()
        assert merged.count == 3
        assert merged.sum == pytest.approx(0.030)
        assert merged.mean == pytest.approx(0.010)
        # All mass in one bucket: the quantile stays within that bucket.
        assert 0.005 <= merged.quantile(0.5) <= 0.020

    def test_aggregate_rejects_non_histograms(self, registry):
        with pytest.raises(ValueError, match="not a histogram"):
            registry.counter("repro_x_total").aggregate()


# ------------------------------------------------------------------ contention
class TestContention:
    THREADS = 8
    PER_THREAD = 2500

    def test_counter_counts_exactly_under_contention(self, registry):
        family = registry.counter("repro_x_total", labelnames=("worker",))
        barrier = threading.Barrier(self.THREADS)

        def hammer(worker: int) -> None:
            barrier.wait()
            for _ in range(self.PER_THREAD):
                family.labels(worker=str(worker % 2)).inc()

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert family.total() == self.THREADS * self.PER_THREAD

    def test_histogram_counts_exactly_under_contention(self, registry):
        family = registry.histogram("repro_x_seconds")
        barrier = threading.Barrier(self.THREADS)

        def hammer() -> None:
            barrier.wait()
            for i in range(self.PER_THREAD):
                family.observe(1e-4 * (1 + i % 7))

        threads = [threading.Thread(target=hammer) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        child = family.labels()
        assert child.count == self.THREADS * self.PER_THREAD
        assert sum(child.counts) == child.count

    def test_concurrent_family_creation_yields_one_family(self, registry):
        results = []
        barrier = threading.Barrier(self.THREADS)

        def create() -> None:
            barrier.wait()
            results.append(registry.counter("repro_race_total"))

        threads = [threading.Thread(target=create) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(family is results[0] for family in results)


# ------------------------------------------------------------------ exposition
class TestRenderText:
    def test_counter_and_gauge_lines(self, registry):
        registry.counter("repro_x_total", "Things counted.",
                         labelnames=("tenant",)).labels(tenant="a").inc(2)
        registry.gauge("repro_y", "A level.").set(1.5)
        text = registry.render_text()
        assert "# HELP repro_x_total Things counted." in text
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{tenant="a"} 2' in text
        assert "# TYPE repro_y gauge" in text
        assert "repro_y 1.5" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative_with_inf(self, registry):
        family = registry.histogram("repro_x_seconds", "Latency.",
                                    buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            family.observe(value)
        text = registry.render_text()
        assert 'repro_x_seconds_bucket{le="1"} 1' in text
        assert 'repro_x_seconds_bucket{le="2"} 2' in text
        assert 'repro_x_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_x_seconds_sum 101" in text
        assert "repro_x_seconds_count 3" in text

    def test_label_values_are_escaped(self, registry):
        registry.counter("repro_x_total", labelnames=("tenant",)).labels(
            tenant='we"ird\nname\\').inc()
        text = registry.render_text()
        assert r'tenant="we\"ird\nname\\"' in text

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render_text() == ""

    def test_collector_samples_are_rendered(self, registry):
        registry.register_collector("mod", lambda: [
            ("repro_mod_things_total", "counter", "Module things.", 4.0, {}),
            ("repro_mod_level", "gauge", "", 2.5, {"shard": "s1"}),
        ])
        text = registry.render_text()
        assert "# TYPE repro_mod_things_total counter" in text
        assert "repro_mod_things_total 4" in text
        assert 'repro_mod_level{shard="s1"} 2.5' in text

    def test_broken_collector_does_not_break_the_scrape(self, registry):
        registry.counter("repro_ok_total").inc()
        registry.register_collector("bad", lambda: 1 / 0)
        text = registry.render_text()
        assert "repro_ok_total 1" in text

    def test_unregister_collector(self, registry):
        registry.register_collector("mod", lambda: [
            ("repro_mod_total", "counter", "", 1.0, {})])
        registry.unregister_collector("mod")
        assert "repro_mod_total" not in registry.render_text()

    def test_snapshot_includes_series_and_collectors(self, registry):
        registry.counter("repro_x_total", labelnames=("t",)).labels(t="a").inc(3)
        registry.histogram("repro_y_seconds").observe(0.5)
        registry.register_collector("mod", lambda: [
            ("repro_z_total", "counter", "", 7.0, {})])
        snapshot = registry.snapshot()
        assert snapshot['repro_x_total{t="a"}'] == 3
        assert snapshot["repro_y_seconds_sum"] == 0.5
        assert snapshot["repro_y_seconds_count"] == 1
        assert snapshot["repro_z_total"] == 7.0


# -------------------------------------------------------------- module wiring
class TestModuleWiring:
    def test_global_registry_carries_process_and_fingerprint_collectors(self):
        # Importing the hot modules registers their collectors on REGISTRY.
        import repro.core.backends.process  # noqa: F401
        import repro.dataframe.column  # noqa: F401

        text = REGISTRY.render_text()
        assert "repro_process_" in text
        assert "repro_fingerprint_full_hashes_total" in text

    def test_capture_yields_scoped_deltas(self):
        from repro.core.backends.process import PROCESS_STATS

        with capture(PROCESS_STATS) as probe:
            PROCESS_STATS.shards_completed += 2
        try:
            delta = probe.delta()
            assert delta["shards_completed"] == 2
        finally:
            PROCESS_STATS.shards_completed -= 2

    def test_process_stats_snapshot_delta_roundtrip(self):
        from repro.core.backends.process import PROCESS_STATS

        before = PROCESS_STATS.snapshot()
        PROCESS_STATS.batches_submitted += 3
        try:
            assert PROCESS_STATS.delta(before)["batches_submitted"] == 3
        finally:
            PROCESS_STATS.batches_submitted -= 3

    def test_fingerprint_stats_snapshot_delta_roundtrip(self):
        from repro.dataframe.column import FINGERPRINT_STATS

        before = FINGERPRINT_STATS.snapshot()
        FINGERPRINT_STATS.full_hashes += 1
        try:
            delta = FINGERPRINT_STATS.delta(before)
            assert delta["full_hashes"] == 1
        finally:
            FINGERPRINT_STATS.full_hashes -= 1


# ------------------------------------------------- dump / delta / merge (IPC)
class TestDumpDeltaMerge:
    def test_dump_is_plain_picklable_state(self, registry):
        import pickle

        registry.counter("repro_x_total", "things", ("t",)).labels(t="a").inc(2)
        registry.histogram("repro_y_seconds", buckets=(1.0, 2.0)).observe(0.5)
        payload = pickle.loads(pickle.dumps(registry.dump()))
        assert payload["repro_x_total"]["series"][("a",)] == 2
        state = payload["repro_y_seconds"]["series"][()]
        assert state["count"] == 1 and state["sum"] == 0.5

    def test_delta_diffs_counters_and_histograms(self, registry):
        counter = registry.counter("repro_x_total")
        histogram = registry.histogram("repro_y_seconds")
        counter.inc(5)
        histogram.observe(0.1)
        before = registry.dump()
        counter.inc(3)
        histogram.observe(0.2)
        histogram.observe(0.4)
        delta = registry_delta(before, registry.dump())
        assert delta["repro_x_total"]["series"][()] == 3
        state = delta["repro_y_seconds"]["series"][()]
        assert state["count"] == 2
        assert state["sum"] == pytest.approx(0.6)

    def test_quiet_series_ship_nothing(self, registry):
        registry.counter("repro_x_total").inc(5)
        registry.histogram("repro_y_seconds").observe(1.0)
        before = registry.dump()
        delta = registry_delta(before, registry.dump())
        assert delta == {}

    def test_merge_adds_extra_labels(self, registry):
        registry.counter("repro_x_total", "things", ("t",)).labels(t="a").inc(4)
        registry.histogram("repro_y_seconds").observe(0.25)
        parent = MetricsRegistry()
        parent.merge(registry.dump(), labels={"worker": "123"})
        snapshot = parent.snapshot()
        assert snapshot['repro_x_total{t="a",worker="123"}'] == 4
        assert snapshot['repro_y_seconds{worker="123"}_count'] == 1

    def test_merge_accumulates_across_batches(self, registry):
        counter = registry.counter("repro_x_total")
        parent = MetricsRegistry()
        before = registry.dump()
        counter.inc(2)
        parent.merge(registry_delta(before, registry.dump()), labels={"worker": "1"})
        before = registry.dump()
        counter.inc(3)
        parent.merge(registry_delta(before, registry.dump()), labels={"worker": "1"})
        assert parent.snapshot()['repro_x_total{worker="1"}'] == 5

    def test_merged_histogram_quantiles_follow_observations(self, registry):
        histogram = registry.histogram("repro_y_seconds")
        for value in (0.001, 0.002, 0.004, 0.5):
            histogram.observe(value)
        parent = MetricsRegistry()
        parent.merge(registry.dump(), labels={"worker": "9"})
        child = parent.histogram(
            "repro_y_seconds", labelnames=("worker",)).labels(worker="9")
        assert child.count == 4
        assert child.quantile(0.5) <= 0.01

    def test_merge_skips_clashing_registrations(self, registry):
        registry.counter("repro_x").inc(1)
        parent = MetricsRegistry()
        parent.gauge("repro_x", labelnames=("worker",)).labels(worker="1").set(7)
        parent.merge(registry.dump(), labels={"worker": "1"})  # must not raise
        assert parent.snapshot()['repro_x{worker="1"}'] == 7

    def test_merge_survives_bucket_length_mismatch(self, registry):
        registry.histogram("repro_y_seconds", buckets=(1.0,)).observe(0.5)
        parent = MetricsRegistry()
        parent.histogram("repro_y_seconds", labelnames=("worker",),
                         buckets=(1.0, 2.0, 4.0)).labels(worker="1").observe(0.5)
        parent.merge(registry.dump(), labels={"worker": "1"})
        # The mismatched payload is ignored; the existing series is intact.
        child = parent.histogram(
            "repro_y_seconds", labelnames=("worker",)).labels(worker="1")
        assert child.count == 1


# --------------------------------------------- namespaced multi-registry text
class TestRenderRegistries:
    def test_namespace_metric_reroots_names(self):
        assert namespace_metric("service", "repro_service_requests_total") == \
            "repro_service_requests_total"
        assert namespace_metric("store", "repro_hits_total") == \
            "repro_store_hits_total"
        assert namespace_metric("service", "plain_total") == \
            "repro_service_plain_total"
        assert namespace_metric("", "repro_export_items_total") == \
            "repro_export_items_total"

    def test_duplicate_families_dedupe_across_registries(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("requests_total").inc(1)
        second.counter("requests_total").inc(2)
        text = render_registries([("service", first), ("service", second)])
        assert text.count("# TYPE repro_service_requests_total counter") == 1
        validate_prometheus_text(text)

    def test_namespaced_concatenation_is_valid(self):
        service, store = MetricsRegistry(), MetricsRegistry()
        service.counter("repro_service_requests_total", "reqs",
                        ("tenant",)).labels(tenant="a").inc(1)
        service.histogram("repro_service_request_seconds").observe(0.5)
        store.counter("repro_store_hits_total").inc(3)
        text = render_registries([("service", service), ("store", store)])
        kinds = validate_prometheus_text(text)
        assert kinds["repro_service_requests_total"] == "counter"
        assert kinds["repro_service_request_seconds"] == "histogram"
        assert kinds["repro_store_hits_total"] == "counter"


# --------------------------------------------------------- strict text parser
class TestValidatePrometheusText:
    def test_accepts_a_real_rendering(self, registry):
        registry.counter("repro_x_total", "things", ("t",)).labels(
            t='we"ird').inc(2)
        registry.histogram("repro_y_seconds", "lat").observe(0.1)
        registry.gauge("repro_z").set(-1.5)
        kinds = validate_prometheus_text(registry.render_text())
        assert kinds == {"repro_x_total": "counter",
                         "repro_y_seconds": "histogram",
                         "repro_z": "gauge"}

    def test_rejects_duplicate_type_blocks(self):
        text = ("# TYPE repro_x_total counter\nrepro_x_total 1\n"
                "# TYPE repro_x_total counter\nrepro_x_total 2\n")
        with pytest.raises(ValueError, match="duplicate TYPE|interleaved|duplicate series"):
            validate_prometheus_text(text)

    def test_rejects_interleaved_families(self):
        text = ("# TYPE repro_a_total counter\n# TYPE repro_b_total counter\n"
                "repro_a_total 1\nrepro_b_total 1\nrepro_a_total{t=\"x\"} 2\n")
        with pytest.raises(ValueError, match="interleaved"):
            validate_prometheus_text(text)

    def test_rejects_samples_before_type(self):
        with pytest.raises(ValueError, match="before its TYPE"):
            validate_prometheus_text("repro_x_total 1\n")

    def test_rejects_duplicate_series(self):
        text = ("# TYPE repro_x_total counter\n"
                "repro_x_total{t=\"a\"} 1\nrepro_x_total{t=\"a\"} 2\n")
        with pytest.raises(ValueError, match="duplicate series"):
            validate_prometheus_text(text)

    def test_rejects_non_cumulative_histogram(self):
        text = ("# TYPE repro_y_seconds histogram\n"
                'repro_y_seconds_bucket{le="1"} 3\n'
                'repro_y_seconds_bucket{le="2"} 2\n'
                'repro_y_seconds_bucket{le="+Inf"} 4\n'
                "repro_y_seconds_sum 1.0\nrepro_y_seconds_count 4\n")
        with pytest.raises(ValueError, match="not cumulative"):
            validate_prometheus_text(text)

    def test_rejects_count_inf_bucket_mismatch(self):
        text = ("# TYPE repro_y_seconds histogram\n"
                'repro_y_seconds_bucket{le="1"} 1\n'
                'repro_y_seconds_bucket{le="+Inf"} 2\n'
                "repro_y_seconds_sum 1.0\nrepro_y_seconds_count 3\n")
        with pytest.raises(ValueError, match="_count"):
            validate_prometheus_text(text)

    def test_rejects_missing_inf_bucket(self):
        text = ("# TYPE repro_y_seconds histogram\n"
                'repro_y_seconds_bucket{le="1"} 1\n'
                "repro_y_seconds_sum 1.0\nrepro_y_seconds_count 1\n")
        with pytest.raises(ValueError, match=r"\+Inf"):
            validate_prometheus_text(text)

    def test_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed"):
            validate_prometheus_text("# TYPE repro_x_total counter\n"
                                     "repro_x_total{t=a} 1\n")
        with pytest.raises(ValueError, match="unparseable"):
            validate_prometheus_text("# TYPE repro_x_total counter\n"
                                     "repro_x_total one\n")

    def test_naive_concatenation_of_shared_names_is_rejected(self):
        # The exact failure mode render_registries exists to fix: two
        # registries sharing a family name, concatenated verbatim.
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("repro_requests_total").inc(1)
        second.counter("repro_requests_total").inc(2)
        broken = first.render_text() + second.render_text()
        with pytest.raises(ValueError):
            validate_prometheus_text(broken)


class TestRenderUnderConcurrentWrites:
    def test_every_scrape_is_valid_while_observers_hammer(self):
        """A scrape racing live ``observe()`` calls must never render a
        histogram whose +Inf cumulative disagrees with its ``_count`` —
        the torn-read shape a strict scraper rejects."""
        registry = MetricsRegistry()
        family = registry.histogram("repro_race_seconds", "contended",
                                    ("worker",))
        stop = threading.Event()

        def hammer(worker):
            child = family.labels(worker=str(worker))
            value = 0.0
            while not stop.is_set():
                value = (value + 0.37) % 8.0
                child.observe(value)

        threads = [threading.Thread(target=hammer, args=(n,))
                   for n in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                families = validate_prometheus_text(registry.render_text())
                assert families["repro_race_seconds"] == "histogram"
        finally:
            stop.set()
            for thread in threads:
                thread.join(5)
