"""Unit tests for the Column type."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import Column
from repro.dataframe.column import column_from_mapping, ensure_same_length, infer_kind
from repro.errors import ColumnError


class TestConstruction:
    def test_numeric_kind_is_inferred(self):
        column = Column("x", [1.0, 2.0, 3.0])
        assert column.is_numeric
        assert not column.is_categorical

    def test_string_kind_is_inferred(self):
        column = Column("x", np.asarray(["a", "b"], dtype=object))
        assert column.is_categorical

    def test_boolean_kind_is_inferred(self):
        column = Column("x", np.asarray([True, False]))
        assert column.is_boolean

    def test_explicit_kind_override(self):
        column = Column("x", np.asarray([1.0, 0.0]), kind="numeric")
        assert column.kind == "numeric"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ColumnError):
            Column("x", [1, 2], kind="weird")

    def test_empty_name_rejected(self):
        with pytest.raises(ColumnError):
            Column("", [1, 2])

    def test_two_dimensional_values_rejected(self):
        with pytest.raises(ColumnError):
            Column("x", np.zeros((2, 2)))

    def test_object_values_are_normalised_to_python_types(self):
        column = Column("x", np.asarray([np.str_("a"), np.int64(3), None], dtype=object))
        assert column.tolist() == ["a", 3, None]

    def test_infer_kind_function(self):
        assert infer_kind(np.asarray([1.5])) == "numeric"
        assert infer_kind(np.asarray(["a"], dtype=object)) == "categorical"
        assert infer_kind(np.asarray([True])) == "boolean"


class TestAccess:
    def test_len_and_iter(self):
        column = Column("x", [1.0, 2.0, 3.0])
        assert len(column) == 3
        assert list(column) == [1.0, 2.0, 3.0]

    def test_scalar_getitem_returns_python_value(self):
        column = Column("x", np.asarray([4.0, 5.0]))
        assert column[1] == 5.0
        assert isinstance(column[1], float)

    def test_slice_getitem_returns_column(self):
        column = Column("x", [1.0, 2.0, 3.0])
        sliced = column[np.asarray([0, 2])]
        assert isinstance(sliced, Column)
        assert sliced.tolist() == [1.0, 3.0]

    def test_equality(self):
        assert Column("x", [1.0, 2.0]) == Column("x", [1.0, 2.0])
        assert Column("x", [1.0, 2.0]) != Column("y", [1.0, 2.0])
        assert Column("x", [1.0, 2.0]) != Column("x", [1.0, 3.0])


class TestTransforms:
    def test_rename_keeps_values(self):
        column = Column("x", [1.0, 2.0]).rename("y")
        assert column.name == "y"
        assert column.tolist() == [1.0, 2.0]

    def test_take_reorders(self):
        column = Column("x", [10.0, 20.0, 30.0])
        assert column.take(np.asarray([2, 0])).tolist() == [30.0, 10.0]

    def test_mask_filters(self):
        column = Column("x", [10.0, 20.0, 30.0])
        assert column.mask(np.asarray([True, False, True])).tolist() == [10.0, 30.0]

    def test_mask_requires_boolean(self):
        with pytest.raises(ColumnError):
            Column("x", [1.0]).mask(np.asarray([1]))

    def test_mask_length_checked(self):
        with pytest.raises(ColumnError):
            Column("x", [1.0, 2.0]).mask(np.asarray([True]))

    def test_concat_same_kind(self):
        merged = Column("x", [1.0]).concat(Column("x", [2.0, 3.0]))
        assert merged.tolist() == [1.0, 2.0, 3.0]

    def test_concat_mixed_kind_degrades_to_categorical(self):
        merged = Column("x", [1.0]).concat(Column("x", np.asarray(["a"], dtype=object)))
        assert merged.is_categorical
        assert merged.tolist() == ["1.0", "a"]

    def test_copy_is_independent(self):
        column = Column("x", [1.0, 2.0])
        copy = column.copy()
        copy.values[0] = 99.0
        assert column.tolist() == [1.0, 2.0]


class TestStatistics:
    def test_null_mask_numeric(self):
        column = Column("x", [1.0, np.nan, 3.0])
        assert column.null_mask().tolist() == [False, True, False]

    def test_null_mask_categorical(self):
        column = Column("x", np.asarray(["a", None, "b"], dtype=object))
        assert column.null_mask().tolist() == [False, True, False]

    def test_unique_and_n_unique(self):
        column = Column("x", np.asarray(["b", "a", "b", None], dtype=object))
        assert sorted(column.unique()) == ["a", "b"]
        assert column.n_unique() == 2

    def test_value_counts(self):
        column = Column("x", np.asarray(["a", "b", "a"], dtype=object))
        assert column.value_counts() == {"a": 2, "b": 1}

    def test_frequencies_sum_to_one(self):
        column = Column("x", [1.0, 1.0, 2.0, np.nan])
        frequencies = column.frequencies()
        assert frequencies[1.0] == pytest.approx(2 / 3)
        assert sum(frequencies.values()) == pytest.approx(1.0)

    def test_factorize_codes_match_uniques(self):
        column = Column("x", np.asarray(["b", "a", "b", None], dtype=object))
        codes, uniques = column.factorize()
        assert uniques == ["a", "b"]
        assert codes.tolist() == [1, 0, 1, -1]

    def test_factorize_is_cached(self):
        column = Column("x", [1.0, 2.0])
        assert column.factorize() is column.factorize()

    def test_numeric_summaries(self):
        column = Column("x", [1.0, 2.0, 3.0, np.nan])
        assert column.min() == 1.0
        assert column.max() == 3.0
        assert column.mean() == pytest.approx(2.0)
        assert column.sum() == pytest.approx(6.0)
        assert column.std() == pytest.approx(1.0)

    def test_empty_numeric_summaries(self):
        column = Column("x", np.asarray([np.nan]))
        assert np.isnan(column.min())
        assert column.sum() == 0.0

    def test_to_float_rejects_categorical(self):
        with pytest.raises(ColumnError):
            Column("x", np.asarray(["a"], dtype=object)).to_float()


class TestHelpers:
    def test_column_from_mapping(self):
        column = column_from_mapping("decade", {1991: "1990s", 2001: "2000s"}, [1991, 2001, 1991])
        assert column.tolist() == ["1990s", "2000s", "1990s"]

    def test_ensure_same_length_accepts_equal(self):
        assert ensure_same_length([Column("a", [1.0]), Column("b", [2.0])]) == 1

    def test_ensure_same_length_rejects_mismatch(self):
        with pytest.raises(ColumnError):
            ensure_same_length([Column("a", [1.0]), Column("b", [1.0, 2.0])])
