"""Unit tests for filter predicates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import (
    And,
    Between,
    Comparison,
    DataFrame,
    IsIn,
    IsNull,
    Not,
    Or,
    RowIndexPredicate,
)
from repro.errors import OperationError


@pytest.fixture
def frame() -> DataFrame:
    return DataFrame({
        "value": np.asarray([1.0, 2.0, 3.0, np.nan, 5.0]),
        "label": np.asarray(["a", "b", "a", "c", None], dtype=object),
    })


class TestComparison:
    @pytest.mark.parametrize("op,expected", [
        ("==", [False, True, False, False, False]),
        ("!=", [True, False, True, True, True]),
        (">", [False, False, True, False, True]),
        (">=", [False, True, True, False, True]),
        ("<", [True, False, False, False, False]),
        ("<=", [True, True, False, False, False]),
    ])
    def test_numeric_operators(self, frame, op, expected):
        assert Comparison("value", op, 2).mask(frame).tolist() == expected

    def test_string_equality(self, frame):
        assert Comparison("label", "==", "a").mask(frame).tolist() == [True, False, True, False, False]

    def test_unknown_operator_rejected(self):
        with pytest.raises(OperationError):
            Comparison("value", "~", 2)

    def test_describe(self):
        assert Comparison("value", ">", 2).describe() == "value > 2"


class TestOtherPredicates:
    def test_isin(self, frame):
        assert IsIn("label", ["a", "c"]).mask(frame).tolist() == [True, False, True, True, False]

    def test_isin_requires_values(self):
        with pytest.raises(OperationError):
            IsIn("label", [])

    def test_between_half_open(self, frame):
        assert Between("value", 2, 5).mask(frame).tolist() == [False, True, True, False, False]

    def test_between_inclusive(self, frame):
        assert Between("value", 2, 5, inclusive_high=True).mask(frame).tolist() == \
            [False, True, True, False, True]

    def test_isnull(self, frame):
        assert IsNull("value").mask(frame).tolist() == [False, False, False, True, False]
        assert IsNull("label").mask(frame).tolist() == [False, False, False, False, True]

    def test_row_index_predicate(self, frame):
        assert RowIndexPredicate([0, 4, 99]).mask(frame).tolist() == [True, False, False, False, True]


class TestCombinators:
    def test_and(self, frame):
        predicate = Comparison("value", ">", 1) & Comparison("label", "==", "a")
        assert predicate.mask(frame).tolist() == [False, False, True, False, False]

    def test_or(self, frame):
        predicate = Comparison("value", "<", 2) | Comparison("label", "==", "c")
        assert predicate.mask(frame).tolist() == [True, False, False, True, False]

    def test_not(self, frame):
        predicate = ~Comparison("value", ">", 2)
        assert predicate.mask(frame).tolist() == [True, True, False, True, False]

    def test_empty_and_rejected(self):
        with pytest.raises(OperationError):
            And([])

    def test_empty_or_rejected(self):
        with pytest.raises(OperationError):
            Or([])

    def test_describe_composition(self, frame):
        predicate = And([Comparison("value", ">", 1), Not(Comparison("label", "==", "a"))])
        text = predicate.describe()
        assert "value > 1" in text
        assert "not" in text
