"""Unit tests for CSV input/output."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import DataFrame, read_csv, write_csv
from repro.errors import DataFrameError


@pytest.fixture
def frame() -> DataFrame:
    return DataFrame({
        "name": np.asarray(["alpha", "beta", "gamma"], dtype=object),
        "score": np.asarray([1.5, 2.0, np.nan]),
        "count": np.asarray([3.0, 4.0, 5.0]),
    })


class TestRoundTrip:
    def test_write_then_read(self, frame, tmp_path):
        path = write_csv(frame, tmp_path / "data.csv")
        loaded = read_csv(path)
        assert loaded.column_names == frame.column_names
        assert loaded["name"].tolist() == frame["name"].tolist()
        assert loaded["count"].tolist() == frame["count"].tolist()

    def test_nan_round_trips_as_missing(self, frame, tmp_path):
        loaded = read_csv(write_csv(frame, tmp_path / "data.csv"))
        assert np.isnan(loaded["score"].tolist()[2])

    def test_integers_written_without_decimal(self, frame, tmp_path):
        path = write_csv(frame, tmp_path / "data.csv")
        text = path.read_text()
        assert "3\n" in text or ",3" in text


class TestRoundTripFidelity:
    """Regression tests: quoting, embedded structure, NaN, and sign edge cases."""

    def _round_trip(self, frame, tmp_path):
        return read_csv(write_csv(frame, tmp_path / "fidelity.csv"))

    def test_delimiter_inside_value(self, tmp_path):
        frame = DataFrame({"t": np.asarray(["a,b", "c", ",lead", "trail,"], dtype=object)})
        assert self._round_trip(frame, tmp_path)["t"].tolist() == frame["t"].tolist()

    def test_newline_inside_value(self, tmp_path):
        frame = DataFrame({"t": np.asarray(["line\nbreak", "two\r\nlines", "plain"],
                                           dtype=object),
                           "v": np.asarray([1.0, 2.0, 3.0])})
        loaded = self._round_trip(frame, tmp_path)
        assert loaded.num_rows == 3
        assert loaded["t"].tolist() == frame["t"].tolist()
        assert loaded["v"].tolist() == frame["v"].tolist()

    def test_quotes_inside_value(self, tmp_path):
        frame = DataFrame({"t": np.asarray(['say "hi"', '"quoted"', 'a""b'], dtype=object)})
        assert self._round_trip(frame, tmp_path)["t"].tolist() == frame["t"].tolist()

    def test_whitespace_preserved_in_categorical(self, tmp_path):
        frame = DataFrame({"t": np.asarray([" padded ", "x", "\ttabbed"], dtype=object)})
        assert self._round_trip(frame, tmp_path)["t"].tolist() == frame["t"].tolist()

    def test_nan_and_none_round_trip_as_missing(self, tmp_path):
        frame = DataFrame({
            "v": np.asarray([1.5, np.nan, 3.0]),
            "t": np.asarray(["a", None, "b"], dtype=object),
        })
        loaded = self._round_trip(frame, tmp_path)
        assert np.isnan(loaded["v"].tolist()[1])
        assert loaded["t"].tolist() == ["a", None, "b"]

    def test_negative_zero_keeps_sign(self, tmp_path):
        frame = DataFrame({"v": np.asarray([-0.0, 0.0, 1.0])})
        loaded = self._round_trip(frame, tmp_path)
        assert np.signbit(loaded["v"].values[0])
        assert not np.signbit(loaded["v"].values[1])
        assert loaded["v"].fingerprint() == frame["v"].fingerprint()

    def test_infinities_round_trip(self, tmp_path):
        frame = DataFrame({"v": np.asarray([float("inf"), float("-inf"), 2.0])})
        assert self._round_trip(frame, tmp_path)["v"].tolist() == frame["v"].tolist()

    def test_full_float_precision(self, tmp_path):
        frame = DataFrame({"v": np.asarray([0.1, 1 / 3, 1e-300, 1e20, 12345.6789])})
        loaded = self._round_trip(frame, tmp_path)
        assert loaded["v"].fingerprint() == frame["v"].fingerprint()

    def test_numeric_looking_text_with_custom_delimiter(self, tmp_path):
        frame = DataFrame({"t": np.asarray(["1;2", "3", "4;"], dtype=object)})
        path = write_csv(frame, tmp_path / "semi.csv", delimiter=";")
        assert read_csv(path, delimiter=";")["t"].tolist() == frame["t"].tolist()


class TestReadCsv:
    def test_type_inference(self, tmp_path):
        path = tmp_path / "mixed.csv"
        path.write_text("a,b\n1,x\n2,y\n")
        frame = read_csv(path)
        assert frame["a"].is_numeric
        assert frame["b"].is_categorical

    def test_forced_numeric_column(self, tmp_path):
        path = tmp_path / "forced.csv"
        path.write_text("a\n1\noops\n3\n")
        frame = read_csv(path, numeric_columns=["a"])
        assert frame["a"].is_numeric
        assert np.isnan(frame["a"].tolist()[1])

    def test_max_rows(self, tmp_path):
        path = tmp_path / "rows.csv"
        path.write_text("a\n1\n2\n3\n4\n")
        assert read_csv(path, max_rows=2).num_rows == 2

    def test_empty_cells_become_missing(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b\n1,\n,x\n")
        frame = read_csv(path)
        assert np.isnan(frame["a"].tolist()[1])
        assert frame["b"].tolist()[0] is None

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DataFrameError):
            read_csv(tmp_path / "nope.csv")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataFrameError):
            read_csv(path)

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "semi.csv"
        path.write_text("a;b\n1;2\n")
        frame = read_csv(path, delimiter=";")
        assert frame.column_names == ["a", "b"]
