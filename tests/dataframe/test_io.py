"""Unit tests for CSV input/output."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import DataFrame, read_csv, write_csv
from repro.errors import DataFrameError


@pytest.fixture
def frame() -> DataFrame:
    return DataFrame({
        "name": np.asarray(["alpha", "beta", "gamma"], dtype=object),
        "score": np.asarray([1.5, 2.0, np.nan]),
        "count": np.asarray([3.0, 4.0, 5.0]),
    })


class TestRoundTrip:
    def test_write_then_read(self, frame, tmp_path):
        path = write_csv(frame, tmp_path / "data.csv")
        loaded = read_csv(path)
        assert loaded.column_names == frame.column_names
        assert loaded["name"].tolist() == frame["name"].tolist()
        assert loaded["count"].tolist() == frame["count"].tolist()

    def test_nan_round_trips_as_missing(self, frame, tmp_path):
        loaded = read_csv(write_csv(frame, tmp_path / "data.csv"))
        assert np.isnan(loaded["score"].tolist()[2])

    def test_integers_written_without_decimal(self, frame, tmp_path):
        path = write_csv(frame, tmp_path / "data.csv")
        text = path.read_text()
        assert "3\n" in text or ",3" in text


class TestReadCsv:
    def test_type_inference(self, tmp_path):
        path = tmp_path / "mixed.csv"
        path.write_text("a,b\n1,x\n2,y\n")
        frame = read_csv(path)
        assert frame["a"].is_numeric
        assert frame["b"].is_categorical

    def test_forced_numeric_column(self, tmp_path):
        path = tmp_path / "forced.csv"
        path.write_text("a\n1\noops\n3\n")
        frame = read_csv(path, numeric_columns=["a"])
        assert frame["a"].is_numeric
        assert np.isnan(frame["a"].tolist()[1])

    def test_max_rows(self, tmp_path):
        path = tmp_path / "rows.csv"
        path.write_text("a\n1\n2\n3\n4\n")
        assert read_csv(path, max_rows=2).num_rows == 2

    def test_empty_cells_become_missing(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b\n1,\n,x\n")
        frame = read_csv(path)
        assert np.isnan(frame["a"].tolist()[1])
        assert frame["b"].tolist()[0] is None

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DataFrameError):
            read_csv(tmp_path / "nope.csv")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataFrameError):
            read_csv(path)

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "semi.csv"
        path.write_text("a;b\n1;2\n")
        frame = read_csv(path, delimiter=";")
        assert frame.column_names == ["a", "b"]
