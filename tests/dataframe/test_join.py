"""Unit tests for join and union."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import DataFrame, join, union
from repro.errors import OperationError, SchemaError


@pytest.fixture
def products() -> DataFrame:
    return DataFrame({
        "item": np.asarray([1.0, 2.0, 3.0]),
        "vendor": np.asarray(["v1", "v2", "v1"], dtype=object),
        "price": np.asarray([10.0, 20.0, 30.0]),
    })


@pytest.fixture
def sales() -> DataFrame:
    return DataFrame({
        "item": np.asarray([1.0, 1.0, 2.0, 4.0]),
        "store": np.asarray(["s1", "s2", "s1", "s3"], dtype=object),
        "price": np.asarray([11.0, 12.0, 21.0, 41.0]),
    })


class TestInnerJoin:
    def test_matches_and_row_count(self, products, sales):
        result = join(sales, products, on="item")
        assert result.num_rows == 3  # items 1 (twice) and 2

    def test_unmatched_rows_dropped(self, products, sales):
        result = join(sales, products, on="item")
        assert 4.0 not in result["item"].tolist()
        assert 3.0 not in result["item"].tolist()

    def test_key_column_appears_once(self, products, sales):
        result = join(sales, products, on="item")
        assert result.column_names.count("item") == 1

    def test_collision_suffixes(self, products, sales):
        result = join(sales, products, on="item")
        assert "price_left" in result and "price_right" in result

    def test_join_values_align(self, products, sales):
        result = join(sales, products, on="item").sort_values("store")
        row = result.to_rows()[0]
        assert row["store"] == "s1"
        assert row["vendor"] in {"v1", "v2"}

    def test_one_to_many_duplication(self, products, sales):
        result = join(products, sales, on="item")
        item_counts = result["item"].value_counts()
        assert item_counts[1.0] == 2

    def test_categorical_key(self):
        left = DataFrame({"k": np.asarray(["a", "b"], dtype=object), "x": [1.0, 2.0]})
        right = DataFrame({"k": np.asarray(["b", "b", "c"], dtype=object), "y": [1.0, 2.0, 3.0]})
        result = join(left, right, on="k")
        assert result.num_rows == 2
        assert set(result["k"].tolist()) == {"b"}

    def test_missing_keys_never_match(self):
        left = DataFrame({"k": np.asarray([1.0, np.nan]), "x": [1.0, 2.0]})
        right = DataFrame({"k": np.asarray([np.nan, 1.0]), "y": [5.0, 6.0]})
        result = join(left, right, on="k")
        assert result.num_rows == 1
        assert result["y"].tolist() == [6.0]

    def test_multi_column_key(self):
        left = DataFrame({
            "a": np.asarray(["x", "x"], dtype=object), "b": np.asarray([1.0, 2.0]), "v": [1.0, 2.0],
        })
        right = DataFrame({
            "a": np.asarray(["x", "x"], dtype=object), "b": np.asarray([2.0, 3.0]), "w": [9.0, 8.0],
        })
        result = join(left, right, on=["a", "b"])
        assert result.num_rows == 1
        assert result["w"].tolist() == [9.0]

    def test_missing_key_column_rejected(self, products, sales):
        with pytest.raises(SchemaError):
            join(products, sales, on="unknown")

    def test_unsupported_how_rejected(self, products, sales):
        with pytest.raises(OperationError):
            join(products, sales, on="item", how="outer")

    def test_dataframe_method_delegates(self, products, sales):
        assert products.join(sales, on="item") == join(products, sales, on="item")


class TestLeftJoin:
    def test_left_join_keeps_unmatched(self, products, sales):
        result = join(products, sales, on="item", how="left")
        assert result.num_rows == 4  # item1 x2, item2, item3 unmatched
        assert 3.0 in result["item"].tolist()

    def test_left_join_fills_missing(self, products, sales):
        result = join(products, sales, on="item", how="left")
        rows = {row["item"]: row for row in result.to_rows()}
        assert rows[3.0]["store"] is None
        assert np.isnan(rows[3.0]["price_right"])


class TestUnion:
    def test_same_schema(self, products):
        result = union(products, products)
        assert result.num_rows == 6
        assert result.column_names == products.column_names

    def test_different_schemas_fill_missing(self, products):
        other = DataFrame({"item": np.asarray([9.0]), "extra": np.asarray(["z"], dtype=object)})
        result = union(products, other)
        assert result.num_rows == 4
        assert "extra" in result
        assert result["extra"].tolist()[:3] == [None, None, None]
        assert np.isnan(result["price"].tolist()[-1])

    def test_dataframe_method_delegates(self, products):
        assert products.union(products) == union(products, products)
