"""Unit tests for the DataFrame container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import Column, Comparison, DataFrame, concat_frames
from repro.errors import ColumnError, SchemaError


class TestConstruction:
    def test_from_mapping_preserves_order(self, tiny_frame):
        assert tiny_frame.column_names == ["year", "decade", "popularity", "loudness"]

    def test_from_columns(self):
        frame = DataFrame([Column("a", [1.0]), Column("b", [2.0])])
        assert frame.shape == (1, 2)

    def test_empty_frame(self):
        frame = DataFrame()
        assert frame.num_rows == 0
        assert frame.num_columns == 0

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            DataFrame([Column("a", [1.0]), Column("a", [2.0])])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ColumnError):
            DataFrame({"a": [1.0], "b": [1.0, 2.0]})

    def test_from_rows(self):
        frame = DataFrame.from_rows([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert frame.shape == (2, 2)
        assert frame["b"].tolist() == ["x", "y"]

    def test_from_rows_empty(self):
        frame = DataFrame.from_rows([], column_order=["a"])
        assert frame.num_rows == 0
        assert frame.column_names == ["a"]


class TestGuessDtype:
    """Regressions for :func:`repro.dataframe.frame._guess_dtype`."""

    def test_empty_values_stay_object(self):
        from repro.dataframe.frame import _guess_dtype

        assert _guess_dtype([]) is object

    def test_all_columns_of_empty_from_rows_are_categorical(self):
        frame = DataFrame.from_rows([], column_order=["a", "b"])
        assert frame["a"].is_categorical
        assert frame["b"].is_categorical

    def test_bool_int_mix_not_silently_coerced(self):
        from repro.dataframe.frame import _guess_dtype

        assert _guess_dtype([True, 1, 2]) is object
        frame = DataFrame.from_rows([{"a": True}, {"a": 2}])
        assert frame["a"].tolist() == [True, 2]

    def test_pure_bool_stays_boolean(self):
        frame = DataFrame.from_rows([{"a": True}, {"a": False}])
        assert frame["a"].is_boolean

    def test_pure_int_stays_numeric(self):
        frame = DataFrame.from_rows([{"a": 1}, {"a": 2}])
        assert frame["a"].is_numeric
        assert frame["a"].values.dtype == np.int64

    def test_float_mix_stays_numeric(self):
        frame = DataFrame.from_rows([{"a": 1}, {"a": 2.5}])
        assert frame["a"].is_numeric


class TestAccess:
    def test_getitem_unknown_column(self, tiny_frame):
        with pytest.raises(ColumnError):
            tiny_frame["missing"]

    def test_contains_and_iter(self, tiny_frame):
        assert "year" in tiny_frame
        assert list(tiny_frame) == tiny_frame.column_names

    def test_numeric_and_categorical_columns(self, tiny_frame):
        assert "decade" in tiny_frame.categorical_columns()
        assert set(tiny_frame.numeric_columns()) == {"year", "popularity", "loudness"}

    def test_row_and_to_rows(self, tiny_frame):
        row = tiny_frame.row(0)
        assert row["decade"] == "1990s"
        assert tiny_frame.to_rows()[0] == row

    def test_to_dict(self, tiny_frame):
        data = tiny_frame.to_dict()
        assert data["year"][0] == 1991

    def test_describe(self, tiny_frame):
        summary = tiny_frame.describe()
        assert summary["popularity"]["count"] == 8
        assert summary["decade"]["distinct"] == 3

    def test_column_kinds(self, tiny_frame):
        kinds = tiny_frame.column_kinds()
        assert kinds["decade"] == "categorical"
        assert kinds["year"] == "numeric"


class TestRowSelection:
    def test_filter_keeps_matching_rows(self, tiny_frame):
        popular = tiny_frame.filter(Comparison("popularity", ">", 65))
        assert popular.num_rows == 4
        assert set(popular["decade"].tolist()) == {"2010s"}

    def test_mask_length_checked(self, tiny_frame):
        with pytest.raises(ColumnError):
            tiny_frame.mask(np.asarray([True]))

    def test_take(self, tiny_frame):
        taken = tiny_frame.take([7, 0])
        assert taken["year"].tolist() == [2014.0, 1991.0]

    def test_remove_rows(self, tiny_frame):
        reduced = tiny_frame.remove_rows([0, 1])
        assert reduced.num_rows == 6
        assert "1990s" not in reduced["decade"].tolist()

    def test_remove_rows_ignores_out_of_range(self, tiny_frame):
        reduced = tiny_frame.remove_rows([100, -5])
        assert reduced.num_rows == tiny_frame.num_rows

    def test_head_and_tail(self, tiny_frame):
        assert tiny_frame.head(3).num_rows == 3
        assert tiny_frame.tail(2)["year"].tolist() == [2013.0, 2014.0]

    def test_sort_values(self, tiny_frame):
        ordered = tiny_frame.sort_values("popularity", ascending=False)
        assert ordered["popularity"].tolist()[0] == 85.0

    def test_sort_values_categorical(self, tiny_frame):
        ordered = tiny_frame.sort_values("decade")
        assert ordered["decade"].tolist()[0] == "1990s"


class TestProjectionAndCopy:
    def test_select(self, tiny_frame):
        projected = tiny_frame.select(["decade", "popularity"])
        assert projected.column_names == ["decade", "popularity"]

    def test_select_missing_column(self, tiny_frame):
        with pytest.raises(ColumnError):
            tiny_frame.select(["nope"])

    def test_drop(self, tiny_frame):
        remaining = tiny_frame.drop(["loudness"])
        assert "loudness" not in remaining

    def test_rename(self, tiny_frame):
        renamed = tiny_frame.rename({"year": "release_year"})
        assert "release_year" in renamed
        assert "year" not in renamed

    def test_with_column_adds_and_replaces(self, tiny_frame):
        extended = tiny_frame.with_column(Column("flag", np.ones(8)))
        assert "flag" in extended
        replaced = extended.with_column(Column("flag", np.zeros(8)))
        assert replaced["flag"].tolist() == [0.0] * 8

    def test_with_column_length_checked(self, tiny_frame):
        with pytest.raises(ColumnError):
            tiny_frame.with_column(Column("flag", [1.0]))

    def test_copy_is_deep(self, tiny_frame):
        copy = tiny_frame.copy()
        copy["year"].values[0] = 1800.0
        assert tiny_frame["year"][0] == 1991.0

    def test_equality(self, tiny_frame):
        assert tiny_frame == tiny_frame.copy()
        assert tiny_frame != tiny_frame.select(["year"])


class TestConcat:
    def test_concat_frames(self, tiny_frame):
        merged = concat_frames([tiny_frame.head(2), tiny_frame.tail(2)])
        assert merged.num_rows == 4

    def test_concat_frames_empty_list(self):
        assert concat_frames([]).num_rows == 0
