"""Unit tests for uniform / stratified sampling and upsampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import DataFrame, stratified_sample, uniform_sample, upsample_with_replacement
from repro.errors import DataFrameError


@pytest.fixture
def frame() -> DataFrame:
    return DataFrame({
        "id": np.arange(100, dtype=float),
        "group": np.asarray([f"g{i % 4}" for i in range(100)], dtype=object),
    })


class TestUniformSample:
    def test_sample_size(self, frame):
        assert uniform_sample(frame, 10, seed=0).num_rows == 10

    def test_sample_without_replacement(self, frame):
        sample = uniform_sample(frame, 50, seed=0)
        assert len(set(sample["id"].tolist())) == 50

    def test_sample_larger_than_frame_returns_frame(self, frame):
        assert uniform_sample(frame, 1_000, seed=0) is frame

    def test_sample_deterministic_given_seed(self, frame):
        first = uniform_sample(frame, 10, seed=3)
        second = uniform_sample(frame, 10, seed=3)
        assert first == second

    def test_negative_size_rejected(self, frame):
        with pytest.raises(DataFrameError):
            uniform_sample(frame, -1)

    def test_dataframe_method_delegates(self, frame):
        assert frame.sample(5, seed=1) == uniform_sample(frame, 5, seed=1)


class TestUpsample:
    def test_target_size(self, frame):
        grown = upsample_with_replacement(frame, 250, seed=0)
        assert grown.num_rows == 250

    def test_original_rows_preserved(self, frame):
        grown = upsample_with_replacement(frame, 150, seed=0)
        assert grown["id"].tolist()[:100] == frame["id"].tolist()

    def test_shrinking_rejected(self, frame):
        with pytest.raises(DataFrameError):
            upsample_with_replacement(frame, 10)

    def test_same_size_is_identity(self, frame):
        assert upsample_with_replacement(frame, 100) is frame


class TestStratifiedSample:
    def test_per_group_cap(self, frame):
        sample = stratified_sample(frame, "group", per_group=5, seed=0)
        counts = sample["group"].value_counts()
        assert all(count == 5 for count in counts.values())

    def test_small_groups_kept_whole(self):
        frame = DataFrame({
            "group": np.asarray(["a", "a", "b"], dtype=object),
            "x": np.asarray([1.0, 2.0, 3.0]),
        })
        sample = stratified_sample(frame, "group", per_group=10, seed=0)
        assert sample.num_rows == 3
