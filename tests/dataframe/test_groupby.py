"""Unit tests for group-by and aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import DataFrame, group_indices, groupby
from repro.dataframe.groupby import AGGREGATIONS, aggregation_column_name
from repro.errors import ColumnError, OperationError


@pytest.fixture
def frame() -> DataFrame:
    return DataFrame({
        "city": np.asarray(["a", "a", "b", "b", "b", None], dtype=object),
        "kind": np.asarray(["x", "y", "x", "x", "y", "x"], dtype=object),
        "value": np.asarray([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
    })


class TestGroupIndices:
    def test_single_key(self, frame):
        buckets = group_indices(frame, ["city"])
        assert sorted(buckets.keys()) == [("a",), ("b",)]
        assert buckets[("a",)].tolist() == [0, 1]
        assert buckets[("b",)].tolist() == [2, 3, 4]

    def test_rows_with_missing_key_are_skipped(self, frame):
        buckets = group_indices(frame, ["city"])
        assert all(5 not in indices for indices in buckets.values())

    def test_multi_key(self, frame):
        buckets = group_indices(frame, ["city", "kind"])
        assert buckets[("b", "x")].tolist() == [2, 3]
        assert len(buckets) == 4

    def test_unknown_key_rejected(self, frame):
        with pytest.raises(ColumnError):
            group_indices(frame, ["missing"])

    def test_empty_frame(self):
        assert group_indices(DataFrame({"a": []}), ["a"]) == {}


class TestGroupBy:
    def test_mean_aggregation(self, frame):
        result = groupby(frame, "city", {"value": ["mean"]})
        assert result.column_names == ["city", "mean_value"]
        by_city = dict(zip(result["city"].tolist(), result["mean_value"].tolist()))
        assert by_city["a"] == pytest.approx(1.5)
        assert by_city["b"] == pytest.approx(4.0)

    def test_multiple_aggregations(self, frame):
        result = groupby(frame, "city", {"value": ["min", "max", "sum"]})
        assert set(result.column_names) == {"city", "min_value", "max_value", "sum_value"}

    def test_count_column(self, frame):
        result = groupby(frame, "city", include_count=True)
        by_city = dict(zip(result["city"].tolist(), result["count"].tolist()))
        assert by_city == {"a": 2.0, "b": 3.0}

    def test_count_is_default_without_aggregations(self, frame):
        result = groupby(frame, "city")
        assert "count" in result

    def test_multi_key_output_has_all_keys(self, frame):
        result = groupby(frame, ["city", "kind"], {"value": ["mean"]})
        assert result.column_names[:2] == ["city", "kind"]
        assert result.num_rows == 4

    def test_groups_sorted_deterministically(self, frame):
        result = groupby(frame, "city", include_count=True)
        assert result["city"].tolist() == ["a", "b"]

    def test_unknown_aggregation_rejected(self, frame):
        with pytest.raises(OperationError):
            groupby(frame, "city", {"value": ["p99"]})

    def test_unknown_value_column_rejected(self, frame):
        with pytest.raises(ColumnError):
            groupby(frame, "city", {"missing": ["mean"]})

    def test_categorical_value_column_rejected_for_mean(self, frame):
        with pytest.raises(OperationError):
            groupby(frame, "city", {"kind": ["mean"]})

    def test_empty_key_list_rejected(self, frame):
        with pytest.raises(OperationError):
            groupby(frame, [])

    def test_nan_values_excluded_from_aggregates(self):
        frame = DataFrame({
            "key": np.asarray(["a", "a"], dtype=object),
            "value": np.asarray([1.0, np.nan]),
        })
        result = groupby(frame, "key", {"value": ["mean"]})
        assert result["mean_value"][0] == pytest.approx(1.0)

    def test_median_and_std(self, frame):
        result = groupby(frame, "city", {"value": ["median", "std"]})
        by_city = dict(zip(result["city"].tolist(), result["median_value"].tolist()))
        assert by_city["b"] == pytest.approx(4.0)

    def test_dataframe_method_delegates(self, frame):
        assert frame.groupby("city", {"value": ["mean"]}) == groupby(frame, "city", {"value": ["mean"]})


class TestHelpers:
    def test_aggregation_column_name(self):
        assert aggregation_column_name("mean", "loudness") == "mean_loudness"

    def test_all_aggregations_handle_singletons(self):
        values = np.asarray([3.0])
        for name, func in AGGREGATIONS.items():
            assert isinstance(func(values), float)
