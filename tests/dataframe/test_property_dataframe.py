"""Property-based tests of the dataframe substrate (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import Column, Comparison, DataFrame, join, union, uniform_sample

_values = st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=60)
_labels = st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=60)


def _frame(values, labels):
    n = min(len(values), len(labels))
    return DataFrame({
        "value": np.asarray(values[:n], dtype=float),
        "label": np.asarray(labels[:n], dtype=object),
    })


@given(_values, _labels)
@settings(max_examples=40, deadline=None)
def test_filter_complement_partitions_rows(values, labels):
    """Rows matching a predicate plus rows matching its negation cover the frame."""
    frame = _frame(values, labels)
    predicate = Comparison("value", ">", 0)
    kept = frame.filter(predicate)
    dropped = frame.filter(~predicate)
    assert kept.num_rows + dropped.num_rows == frame.num_rows


@given(_values, _labels)
@settings(max_examples=40, deadline=None)
def test_remove_rows_is_complement_of_take(values, labels):
    frame = _frame(values, labels)
    indices = list(range(0, frame.num_rows, 2))
    removed = frame.remove_rows(indices)
    assert removed.num_rows == frame.num_rows - len(indices)


@given(_values, _labels)
@settings(max_examples=40, deadline=None)
def test_value_counts_total_equals_non_missing_rows(values, labels):
    frame = _frame(values, labels)
    counts = frame["label"].value_counts()
    assert sum(counts.values()) == frame.num_rows


@given(_values, _labels)
@settings(max_examples=40, deadline=None)
def test_frequencies_sum_to_one(values, labels):
    frame = _frame(values, labels)
    frequencies = frame["label"].frequencies()
    assert abs(sum(frequencies.values()) - 1.0) < 1e-9


@given(_values, _labels, st.integers(min_value=0, max_value=80))
@settings(max_examples=40, deadline=None)
def test_uniform_sample_never_exceeds_frame(values, labels, size):
    frame = _frame(values, labels)
    sample = uniform_sample(frame, size, seed=0)
    assert sample.num_rows == min(size, frame.num_rows)


@given(_values, _labels)
@settings(max_examples=40, deadline=None)
def test_union_row_count_adds_up(values, labels):
    frame = _frame(values, labels)
    merged = union(frame, frame)
    assert merged.num_rows == 2 * frame.num_rows


@given(_labels, _labels)
@settings(max_examples=40, deadline=None)
def test_inner_join_row_count_matches_pair_count(left_labels, right_labels):
    """|A ⋈ B| equals the sum over keys of count_A(k) * count_B(k)."""
    left = DataFrame({"k": np.asarray(left_labels, dtype=object),
                      "x": np.arange(len(left_labels), dtype=float)})
    right = DataFrame({"k": np.asarray(right_labels, dtype=object),
                       "y": np.arange(len(right_labels), dtype=float)})
    joined = join(left, right, on="k")
    left_counts = left["k"].value_counts()
    right_counts = right["k"].value_counts()
    expected = sum(count * right_counts.get(key, 0) for key, count in left_counts.items())
    assert joined.num_rows == expected


@given(_values)
@settings(max_examples=40, deadline=None)
def test_groupby_counts_cover_all_rows(values):
    labels = ["g" + str(int(abs(v)) % 3) for v in values]
    frame = DataFrame({"g": np.asarray(labels, dtype=object), "v": np.asarray(values, dtype=float)})
    grouped = frame.groupby("g", include_count=True)
    assert sum(grouped["count"].tolist()) == frame.num_rows


@given(_values)
@settings(max_examples=30, deadline=None)
def test_column_factorize_reconstructs_values(values):
    column = Column("v", np.asarray(values, dtype=float))
    codes, uniques = column.factorize()
    reconstructed = [uniques[code] for code in codes]
    assert np.allclose(reconstructed, values)
