"""Unit tests for chart specifications."""

from __future__ import annotations

import pytest

from repro.viz import BarChartWithReference, ChartSpecError, SideBySideBarChart


class TestSideBySideBarChart:
    def test_valid_spec(self):
        chart = SideBySideBarChart(
            title="t", x_label="decade", categories=["a", "b"], before=[1.0, 2.0],
            after=[3.0, 4.0], highlight_index=1,
        )
        assert chart.highlighted_category == "b"
        assert chart.kind == "side_by_side_bars"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ChartSpecError):
            SideBySideBarChart(title="t", x_label="x", categories=["a"], before=[1.0, 2.0],
                               after=[1.0])

    def test_out_of_range_highlight_rejected(self):
        with pytest.raises(ChartSpecError):
            SideBySideBarChart(title="t", x_label="x", categories=["a"], before=[1.0],
                               after=[1.0], highlight_index=5)

    def test_no_highlight(self):
        chart = SideBySideBarChart(title="t", x_label="x", categories=["a"], before=[1.0],
                                   after=[1.0])
        assert chart.highlighted_category is None

    def test_to_dict_round_trip(self):
        chart = SideBySideBarChart(title="t", x_label="x", categories=["a", "b"],
                                   before=[1.0, 2.0], after=[3.0, 4.0], highlight_index=0)
        payload = chart.to_dict()
        assert payload["kind"] == "side_by_side_bars"
        assert payload["series"][0]["values"] == [1.0, 2.0]
        assert payload["highlight_index"] == 0


class TestBarChartWithReference:
    def test_valid_spec(self):
        chart = BarChartWithReference(title="t", x_label="x", y_label="y", categories=["a"],
                                      values=[1.0], reference_value=0.5, highlight_index=0)
        assert chart.highlighted_category == "a"
        assert chart.kind == "bars_with_reference"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ChartSpecError):
            BarChartWithReference(title="t", x_label="x", y_label="y", categories=["a", "b"],
                                  values=[1.0])

    def test_out_of_range_highlight_rejected(self):
        with pytest.raises(ChartSpecError):
            BarChartWithReference(title="t", x_label="x", y_label="y", categories=["a"],
                                  values=[1.0], highlight_index=2)

    def test_to_dict_includes_reference(self):
        chart = BarChartWithReference(title="t", x_label="x", y_label="y", categories=["a"],
                                      values=[1.0], reference_value=2.0, reference_label="mean")
        payload = chart.to_dict()
        assert payload["reference"] == {"label": "mean", "value": 2.0}

    def test_to_dict_without_reference(self):
        chart = BarChartWithReference(title="t", x_label="x", y_label="y", categories=["a"],
                                      values=[1.0])
        assert chart.to_dict()["reference"] is None
