"""Unit tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.viz import (
    BarChartWithReference,
    SideBySideBarChart,
    render_bars_with_reference,
    render_chart,
    render_side_by_side,
)


@pytest.fixture
def side_by_side() -> SideBySideBarChart:
    return SideBySideBarChart(
        title="Distribution change of 'decade'",
        x_label="decade",
        categories=["1990s", "2000s", "2010s"],
        before=[20.0, 30.0, 3.5],
        after=[10.0, 25.0, 61.0],
        highlight_index=2,
    )


@pytest.fixture
def bars() -> BarChartWithReference:
    return BarChartWithReference(
        title="Mean 'loudness' per decade",
        x_label="decade",
        y_label="Mean loudness",
        categories=["1990s", "2000s", "2010s"],
        values=[-10.8, -8.0, -7.2],
        reference_value=-8.7,
        highlight_index=0,
    )


class TestSideBySideRendering:
    def test_contains_title_and_categories(self, side_by_side):
        text = render_side_by_side(side_by_side)
        assert "Distribution change of 'decade'" in text
        assert "1990s" in text and "2010s" in text

    def test_highlight_marker(self, side_by_side):
        text = render_side_by_side(side_by_side)
        highlighted_lines = [line for line in text.splitlines() if line.startswith("*")]
        assert len(highlighted_lines) == 1
        assert "2010s" in highlighted_lines[0]

    def test_before_and_after_labels(self, side_by_side):
        text = render_side_by_side(side_by_side)
        assert "Before" in text and "After" in text

    def test_bar_length_scales_with_value(self, side_by_side):
        text = render_side_by_side(side_by_side, width=20)
        lines = text.splitlines()
        after_2010s = next(line for line in lines if "61" in line)
        after_1990s = next(line for line in lines if "10" in line and "#" in line)
        assert after_2010s.count("#") > after_1990s.count("#")


class TestBarsRendering:
    def test_contains_reference_line(self, bars):
        text = render_bars_with_reference(bars)
        assert "mean = -8.7" in text

    def test_highlight_marker(self, bars):
        text = render_bars_with_reference(bars)
        assert any(line.startswith("*") and "1990s" in line for line in text.splitlines())

    def test_missing_values_are_marked(self):
        chart = BarChartWithReference(title="t", x_label="x", y_label="y",
                                      categories=["a", "b"], values=[1.0, float("nan")])
        assert "(missing)" in render_bars_with_reference(chart)


class TestDispatch:
    def test_render_chart_dispatches(self, side_by_side, bars):
        assert "Before" in render_chart(side_by_side)
        assert "mean" in render_chart(bars)

    def test_unknown_spec_rejected(self):
        with pytest.raises(TypeError):
            render_chart(object())
