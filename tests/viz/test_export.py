"""Unit tests for chart export helpers."""

from __future__ import annotations

import json

import numpy as np

from repro.viz import (
    BarChartWithReference,
    SideBySideBarChart,
    chart_to_dict,
    chart_to_json,
    charts_to_json,
    save_charts,
)


def _chart() -> SideBySideBarChart:
    return SideBySideBarChart(title="t", x_label="x", categories=["a"], before=[1.0], after=[2.0])


class TestExport:
    def test_chart_to_dict_matches_to_dict(self):
        chart = _chart()
        assert chart_to_dict(chart) == chart.to_dict()

    def test_chart_to_json_is_valid_json(self):
        payload = json.loads(chart_to_json(_chart()))
        assert payload["kind"] == "side_by_side_bars"

    def test_charts_to_json_is_a_list(self):
        other = BarChartWithReference(title="t", x_label="x", y_label="y", categories=["a"],
                                      values=[1.0])
        payload = json.loads(charts_to_json([_chart(), other]))
        assert len(payload) == 2

    def test_numpy_values_serialised(self):
        chart = BarChartWithReference(title="t", x_label="x", y_label="y", categories=["a"],
                                      values=[np.float64(1.5)])
        payload = json.loads(chart_to_json(chart))
        assert payload["values"] == [1.5]

    def test_save_charts_writes_file(self, tmp_path):
        path = save_charts([_chart()], tmp_path / "charts" / "out.json")
        assert path.exists()
        assert json.loads(path.read_text())[0]["title"] == "t"
