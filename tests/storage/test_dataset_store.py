"""DatasetStore + registry and service integration."""

from __future__ import annotations

import numpy as np
import pytest

from storage_testutil import assert_round_trip
from repro.dataframe import Comparison, DataFrame
from repro.datasets import DatasetRegistry
from repro.errors import ServiceError, StorageError
from repro.service import ExplanationService
from repro.storage import DatasetStore, write_dataset


@pytest.fixture
def frame() -> DataFrame:
    return DataFrame({
        "x": np.asarray([1.0, 2.0, np.nan, 4.0]),
        "g": np.asarray(["a", "b", "a", None], dtype=object),
    })


@pytest.fixture
def store(tmp_path) -> DatasetStore:
    return DatasetStore(tmp_path / "store")


class TestDatasetStore:
    def test_put_then_open(self, store, frame):
        store.put("demo", frame)
        assert_round_trip(frame, store.open("demo"))

    def test_contains_and_names(self, store, frame):
        assert "demo" not in store
        store.put("demo", frame)
        store.put("other.v2", frame)
        assert "demo" in store and store.contains("other.v2")
        assert store.names() == ["demo", "other.v2"]

    def test_open_missing_raises(self, store):
        with pytest.raises(StorageError, match="not found"):
            store.open("nope")

    def test_invalid_names_rejected(self, store, frame):
        for bad in ("", "../escape", "a/b", ".hidden"):
            with pytest.raises(StorageError, match="invalid dataset name"):
                store.put(bad, frame)

    def test_opens_share_buffers(self, store, frame):
        store.put("demo", frame)
        first, second = store.open("demo"), store.open("demo")
        assert first["x"] is second["x"]

    def test_survives_new_store_instance(self, store, frame):
        store.put("demo", frame)
        fresh = DatasetStore(store.root)
        assert_round_trip(frame, fresh.open("demo"))

    def test_delete(self, store, frame):
        store.put("demo", frame)
        assert store.delete("demo")
        assert "demo" not in store
        assert not store.delete("demo")

    def test_put_overwrites_by_default(self, store, frame):
        store.put("demo", frame)
        store.put("demo", frame.head(2))
        assert store.open("demo").num_rows == 2

    def test_external_dataset_visible(self, store, frame):
        write_dataset(frame, store.root / "direct")
        assert "direct" in store
        assert_round_trip(frame, store.open("direct"))


class TestPutLocking:
    """put() is single-writer per name: a ``.lock`` file serializes writers."""

    def _frames(self, count: int):
        return [
            DataFrame({"x": np.arange(10, dtype=float) + offset}) for offset in range(count)
        ]

    def test_concurrent_writers_to_one_name(self, store):
        """The regression the lock fixes: concurrent overwriters raced on the
        destination (rmtree then staging-rename — the loser's rename hit the
        winner's fresh directory) and on the put-then-open read; under the
        lock every put succeeds and the final dataset is a complete write of
        one of the frames."""
        import threading

        frames = self._frames(4)
        errors = []

        def writer(frame):
            try:
                for _ in range(5):
                    store.put("contested", frame)
            except Exception as error:  # pragma: no cover - the regression
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(frame,)) for frame in frames]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        final = DatasetStore(store.root).open("contested")
        assert any(final.fingerprint() == frame.fingerprint() for frame in frames)
        assert not list(store.root.glob(".contested.lock"))  # released

    def test_dead_writer_lock_is_taken_over(self, store, frame):
        """A lock whose recorded pid is provably dead is stolen immediately."""
        import subprocess
        import time

        # A real, provably-dead pid: spawn a child and let it exit.
        child = subprocess.Popen(["true"])
        child.wait()
        lock = store.root / ".demo.lock"
        lock.write_text(f"{child.pid} deadbeef {time.time():.3f}\n")
        store.put("demo", frame, lock_timeout=5.0)
        assert_round_trip(frame, store.open("demo"))
        assert not lock.exists()

    def test_unreadable_stale_lock_aged_out(self, store, frame):
        """A pidless (foreign/corrupt) lock is only stolen past stale_after."""
        import os
        import time

        from repro.storage.store import DEFAULT_LOCK_STALE_AFTER

        lock = store.root / ".demo.lock"
        lock.write_text("garbage\n")
        # Age the lock relative to the live constant so the test keeps
        # asserting "past stale_after" whatever the default becomes.
        old = time.time() - (DEFAULT_LOCK_STALE_AFTER * 2)
        os.utime(lock, (old, old))
        store.put("demo", frame, lock_timeout=5.0)
        assert_round_trip(frame, store.open("demo"))

    def test_live_writer_blocks_until_timeout(self, store, frame):
        """A fresh lock held by a live process makes put wait, then raise."""
        import os
        import time

        lock = store.root / ".demo.lock"
        lock.write_text(f"{os.getpid()} feedface {time.time():.3f}\n")
        start = time.monotonic()
        with pytest.raises(StorageError, match="timed out"):
            store.put("demo", frame, lock_timeout=0.3)
        assert time.monotonic() - start >= 0.3
        lock.unlink()

    def test_heartbeat_protects_a_slow_live_writer(self, tmp_path):
        """A held lock outliving stale_after is NOT stolen: the heartbeat
        keeps re-stamping it, so stale_after only reaps writers that
        stopped making progress (crashed/frozen), never merely slow ones."""
        import time

        from repro.storage.store import _DirectoryLock

        lock_path = tmp_path / "x.lock"
        holder = _DirectoryLock(lock_path, stale_after=0.2)
        holder.acquire()
        try:
            time.sleep(0.6)  # well past stale_after; heartbeats keep it fresh
            contender = _DirectoryLock(lock_path, timeout=0.3, stale_after=0.2)
            with pytest.raises(StorageError, match="timed out"):
                contender.acquire()
        finally:
            holder.release()
        assert not lock_path.exists()

    def test_release_spares_a_stolen_lock(self, store, frame, tmp_path):
        """Releasing verifies the owner token: a thief's lock survives."""
        from repro.storage.store import _DirectoryLock

        lock_path = tmp_path / "x.lock"
        ours = _DirectoryLock(lock_path)
        ours.acquire()
        lock_path.unlink()  # someone broke our lock ...
        thief = _DirectoryLock(lock_path)
        thief.acquire()  # ... and took it over
        ours.release()
        assert lock_path.exists()  # the thief's lock is untouched
        thief.release()
        assert not lock_path.exists()


class TestRegistryIntegration:
    _SIZES = dict(spotify_rows=500, bank_rows=400, sales_rows=800, products_rows=100)

    def test_tables_persisted_and_identical(self, tmp_path):
        plain = DatasetRegistry(seed=3, **self._SIZES)
        stored = DatasetRegistry(seed=3, store=DatasetStore(tmp_path / "reg"),
                                 **self._SIZES)
        for name in ("spotify", "products", "sales"):
            assert_round_trip(plain.table(name), stored.table(name))

    def test_second_registry_skips_regeneration(self, tmp_path):
        store = DatasetStore(tmp_path / "reg")
        first = DatasetRegistry(seed=3, store=store, **self._SIZES)
        first.table("spotify")
        key = first._store_key("spotify")
        assert store.contains(key)
        manifest_path = store.root / key / "manifest.json"
        stamp = manifest_path.stat().st_mtime_ns
        second = DatasetRegistry(seed=3, store=store, **self._SIZES)
        second.table("spotify")
        assert manifest_path.stat().st_mtime_ns == stamp  # no rewrite

    def test_store_keys_pin_identity(self, tmp_path):
        store = DatasetStore(tmp_path / "reg")
        small = DatasetRegistry(seed=3, store=store, **self._SIZES)
        sizes = dict(self._SIZES, spotify_rows=600)
        bigger = DatasetRegistry(seed=3, store=store, **sizes)
        assert small._store_key("spotify") != bigger._store_key("spotify")
        other_seed = DatasetRegistry(seed=4, store=store, **self._SIZES)
        assert small._store_key("spotify") != other_seed._store_key("spotify")

    def test_registered_override_beats_store(self, tmp_path):
        """register() wins over a previously persisted generated table."""
        store = DatasetStore(tmp_path / "reg")
        registry = DatasetRegistry(seed=3, store=store, **self._SIZES)
        registry.table("spotify")  # generated and persisted
        custom = DataFrame({"x": np.asarray([1.0, 2.0])})
        registry.register("spotify", custom)
        registry.clear()
        served = registry.table("spotify")
        assert served.num_rows == 2
        # And the custom frame was never persisted under a generator name.
        assert not store.contains(registry._store_key("spotify")) or (
            store.open(registry._store_key("spotify")).num_rows == 500
        )

    def test_store_accepts_path(self, tmp_path):
        registry = DatasetRegistry(seed=3, store=str(tmp_path / "reg"), **self._SIZES)
        assert registry.table("spotify").num_rows == 500


class TestServiceIntegration:
    def test_open_dataset_requires_store(self, frame):
        with ExplanationService() as service:
            with pytest.raises(ServiceError, match="no dataset store"):
                service.open_dataset("alice", "demo")

    def test_tenants_share_one_physical_copy(self, tmp_path, frame):
        store = DatasetStore(tmp_path / "store")
        store.put("demo", frame)
        with ExplanationService(dataset_store=store) as service:
            alice = service.open_dataset("alice", "demo")
            bob = service.open_dataset("bob", "demo")
            assert alice.frame["x"] is bob.frame["x"]

    def test_explain_on_stored_dataset(self, tmp_path):
        rng = np.random.default_rng(0)
        frame = DataFrame({
            "value": rng.normal(size=400),
            "group": np.asarray(rng.choice(["a", "b", "c"], size=400), dtype=object),
        })
        store = DatasetStore(tmp_path / "store")
        store.put("demo", frame)
        with ExplanationService(dataset_store=str(tmp_path / "store")) as service:
            wrapper = service.open_dataset("alice", "demo")
            filtered = wrapper.filter(Comparison("value", ">", 0.5))
            report = filtered.explain()
            assert report.all_candidates
            assert service.stats("alice")["completed"] == 1
