"""DatasetStore + registry and service integration."""

from __future__ import annotations

import numpy as np
import pytest

from storage_testutil import assert_round_trip
from repro.dataframe import Comparison, DataFrame
from repro.datasets import DatasetRegistry
from repro.errors import ServiceError, StorageError
from repro.service import ExplanationService
from repro.storage import DatasetStore, write_dataset


@pytest.fixture
def frame() -> DataFrame:
    return DataFrame({
        "x": np.asarray([1.0, 2.0, np.nan, 4.0]),
        "g": np.asarray(["a", "b", "a", None], dtype=object),
    })


@pytest.fixture
def store(tmp_path) -> DatasetStore:
    return DatasetStore(tmp_path / "store")


class TestDatasetStore:
    def test_put_then_open(self, store, frame):
        store.put("demo", frame)
        assert_round_trip(frame, store.open("demo"))

    def test_contains_and_names(self, store, frame):
        assert "demo" not in store
        store.put("demo", frame)
        store.put("other.v2", frame)
        assert "demo" in store and store.contains("other.v2")
        assert store.names() == ["demo", "other.v2"]

    def test_open_missing_raises(self, store):
        with pytest.raises(StorageError, match="not found"):
            store.open("nope")

    def test_invalid_names_rejected(self, store, frame):
        for bad in ("", "../escape", "a/b", ".hidden"):
            with pytest.raises(StorageError, match="invalid dataset name"):
                store.put(bad, frame)

    def test_opens_share_buffers(self, store, frame):
        store.put("demo", frame)
        first, second = store.open("demo"), store.open("demo")
        assert first["x"] is second["x"]

    def test_survives_new_store_instance(self, store, frame):
        store.put("demo", frame)
        fresh = DatasetStore(store.root)
        assert_round_trip(frame, fresh.open("demo"))

    def test_delete(self, store, frame):
        store.put("demo", frame)
        assert store.delete("demo")
        assert "demo" not in store
        assert not store.delete("demo")

    def test_put_overwrites_by_default(self, store, frame):
        store.put("demo", frame)
        store.put("demo", frame.head(2))
        assert store.open("demo").num_rows == 2

    def test_external_dataset_visible(self, store, frame):
        write_dataset(frame, store.root / "direct")
        assert "direct" in store
        assert_round_trip(frame, store.open("direct"))


class TestRegistryIntegration:
    _SIZES = dict(spotify_rows=500, bank_rows=400, sales_rows=800, products_rows=100)

    def test_tables_persisted_and_identical(self, tmp_path):
        plain = DatasetRegistry(seed=3, **self._SIZES)
        stored = DatasetRegistry(seed=3, store=DatasetStore(tmp_path / "reg"),
                                 **self._SIZES)
        for name in ("spotify", "products", "sales"):
            assert_round_trip(plain.table(name), stored.table(name))

    def test_second_registry_skips_regeneration(self, tmp_path):
        store = DatasetStore(tmp_path / "reg")
        first = DatasetRegistry(seed=3, store=store, **self._SIZES)
        first.table("spotify")
        key = first._store_key("spotify")
        assert store.contains(key)
        manifest_path = store.root / key / "manifest.json"
        stamp = manifest_path.stat().st_mtime_ns
        second = DatasetRegistry(seed=3, store=store, **self._SIZES)
        second.table("spotify")
        assert manifest_path.stat().st_mtime_ns == stamp  # no rewrite

    def test_store_keys_pin_identity(self, tmp_path):
        store = DatasetStore(tmp_path / "reg")
        small = DatasetRegistry(seed=3, store=store, **self._SIZES)
        sizes = dict(self._SIZES, spotify_rows=600)
        bigger = DatasetRegistry(seed=3, store=store, **sizes)
        assert small._store_key("spotify") != bigger._store_key("spotify")
        other_seed = DatasetRegistry(seed=4, store=store, **self._SIZES)
        assert small._store_key("spotify") != other_seed._store_key("spotify")

    def test_registered_override_beats_store(self, tmp_path):
        """register() wins over a previously persisted generated table."""
        store = DatasetStore(tmp_path / "reg")
        registry = DatasetRegistry(seed=3, store=store, **self._SIZES)
        registry.table("spotify")  # generated and persisted
        custom = DataFrame({"x": np.asarray([1.0, 2.0])})
        registry.register("spotify", custom)
        registry.clear()
        served = registry.table("spotify")
        assert served.num_rows == 2
        # And the custom frame was never persisted under a generator name.
        assert not store.contains(registry._store_key("spotify")) or (
            store.open(registry._store_key("spotify")).num_rows == 500
        )

    def test_store_accepts_path(self, tmp_path):
        registry = DatasetRegistry(seed=3, store=str(tmp_path / "reg"), **self._SIZES)
        assert registry.table("spotify").num_rows == 500


class TestServiceIntegration:
    def test_open_dataset_requires_store(self, frame):
        with ExplanationService() as service:
            with pytest.raises(ServiceError, match="no dataset store"):
                service.open_dataset("alice", "demo")

    def test_tenants_share_one_physical_copy(self, tmp_path, frame):
        store = DatasetStore(tmp_path / "store")
        store.put("demo", frame)
        with ExplanationService(dataset_store=store) as service:
            alice = service.open_dataset("alice", "demo")
            bob = service.open_dataset("bob", "demo")
            assert alice.frame["x"] is bob.frame["x"]

    def test_explain_on_stored_dataset(self, tmp_path):
        rng = np.random.default_rng(0)
        frame = DataFrame({
            "value": rng.normal(size=400),
            "group": np.asarray(rng.choice(["a", "b", "c"], size=400), dtype=object),
        })
        store = DatasetStore(tmp_path / "store")
        store.put("demo", frame)
        with ExplanationService(dataset_store=str(tmp_path / "store")) as service:
            wrapper = service.open_dataset("alice", "demo")
            filtered = wrapper.filter(Comparison("value", ">", 0.5))
            report = filtered.explain()
            assert report.all_candidates
            assert service.stats("alice")["completed"] == 1
