"""Mmap-backed frames: immutability, laziness, and persisted fingerprints."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import Column, DataFrame
from repro.dataframe.column import FINGERPRINT_STATS
from repro.errors import ColumnError
from repro.session import ExplanationSession
from repro.operators import ExploratoryStep, GroupBy
from repro.storage import open_dataset, write_dataset


@pytest.fixture
def dataset(tmp_path):
    frame = DataFrame({
        "value": np.asarray([3.0, 1.0, np.nan, 4.0, 1.5, 9.0]),
        "count": np.asarray([5, 3, 8, 1, 2, 9], dtype=np.int64),
        "group": np.asarray(["a", "b", "a", None, "b", "a"], dtype=object),
    })
    return frame, open_dataset(write_dataset(frame, tmp_path / "ds", chunk_rows=4))


class TestImmutability:
    def test_numeric_mmap_write_raises(self, dataset):
        _, handle = dataset
        with pytest.raises(ValueError):
            handle.frame()["value"].values[0] = 99.0

    def test_materialised_categorical_write_raises(self, dataset):
        _, handle = dataset
        with pytest.raises(ValueError):
            handle.frame()["group"].values[0] = "zzz"

    def test_copy_is_writable_and_never_leaks_back(self, dataset):
        frame, handle = dataset
        shared = handle.frame()
        copy = shared["value"].copy()
        copy.values[0] = -123.0
        assert shared["value"][0] == 3.0
        assert handle.frame()["value"][0] == 3.0
        # The copy is new content: fresh fingerprint, no persisted shortcut.
        assert copy.fingerprint() != shared["value"].fingerprint()

    def test_derived_frames_are_plain_and_writable(self, dataset):
        _, handle = dataset
        filtered = handle.frame().mask(np.asarray([True, False, True, True, False, True]))
        filtered["value"].values[0] = 42.0  # a slice is a private copy
        assert handle.frame()["value"][0] == 3.0


class TestSharing:
    def test_frames_share_column_objects(self, dataset):
        _, handle = dataset
        first, second = handle.frame(), handle.frame()
        assert first is not second
        for name in first.column_names:
            assert first[name] is second[name]

    def test_structure_caches_shared_across_frames(self, dataset):
        _, handle = dataset
        first = handle.frame()["value"]
        order = first.sorted_order()
        assert handle.frame()["value"].sorted_order() is order


class TestPersistedFingerprints:
    def test_no_full_hash_on_stored_columns(self, dataset):
        frame, handle = dataset
        opened = handle.frame()
        expected = frame.fingerprint()
        FINGERPRINT_STATS.reset()
        assert opened.fingerprint() == expected
        assert FINGERPRINT_STATS.full_hashes == 0
        assert FINGERPRINT_STATS.persisted_hits == 3

    def test_lazy_categorical_hash_without_materialisation(self, dataset):
        _, handle = dataset
        column = handle.column("group")
        assert column._data is None
        column.fingerprint()
        assert column._data is None  # persisted: the values were never built

    def test_writable_backing_disables_shortcut(self):
        backing = np.asarray([1.0, 2.0])
        backing.flags.writeable = False
        column = Column.from_storage("x", "numeric", 2, values=backing,
                                     fingerprint="bogus")
        assert column.fingerprint() == "bogus"
        backing2 = np.asarray([1.0, 2.0])
        column._data = backing2  # simulate the buffer becoming writable
        assert column.fingerprint() == Column("x", backing2).fingerprint()

    def test_from_storage_validation(self):
        with pytest.raises(ColumnError):
            Column.from_storage("x", "numeric", 2)
        with pytest.raises(ColumnError):
            Column.from_storage("x", "numeric", 2, values=np.asarray([1.0, 2.0]))

    def test_warm_session_explain_never_rehashes_dataset(self, dataset):
        """The ROADMAP's warm-path bar: zero full-column hashes on the input."""
        _, handle = dataset
        opened = handle.frame()
        step = ExploratoryStep([opened], GroupBy("group", {"value": ["mean"]}))
        session = ExplanationSession()
        session.explain(step)
        FINGERPRINT_STATS.reset()
        session.explain(step)  # warm: report-memo hit
        assert FINGERPRINT_STATS.persisted_hits >= opened.num_columns
        # Only derived (tiny, aggregate) columns may have been hashed.
        assert FINGERPRINT_STATS.full_hash_max_rows < opened.num_rows


class TestLaziness:
    def test_numeric_columns_map_without_reading(self, dataset):
        _, handle = dataset
        column = handle.column("value")
        assert isinstance(column.values, np.memmap)
        assert len(column) == 6

    def test_len_does_not_materialise(self, dataset):
        _, handle = dataset
        column = handle.column("group")
        assert len(column) == 6
        assert column._data is None

    def test_null_count_via_stats_matches_values(self, dataset):
        frame, handle = dataset
        meta = handle.column_meta("value")
        assert sum(chunk.nulls for chunk in meta.chunks) == int(
            frame["value"].null_mask().sum()
        )
