"""Shared helpers for the storage-subsystem tests.

Not a ``conftest.py`` on purpose: these are imported by name, and pytest's
rootdir import mode maps every ``conftest`` basename to one module.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import DataFrame


def values_equal(left, right) -> bool:
    """Element equality with NaN == NaN and exact type agreement."""
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if isinstance(a, float) and isinstance(b, float) and np.isnan(a) and np.isnan(b):
            continue
        if type(a) is not type(b) or a != b:
            return False
    return True


def assert_round_trip(original: DataFrame, loaded: DataFrame) -> None:
    """The loaded frame equals the original: schema, kinds, values, fingerprints."""
    assert loaded.column_names == original.column_names
    assert loaded.num_rows == original.num_rows
    for name in original.column_names:
        a, b = original[name], loaded[name]
        assert a.kind == b.kind, name
        assert values_equal(a.tolist(), b.tolist()), name
        assert a.fingerprint() == b.fingerprint(), name
    assert loaded.fingerprint() == original.fingerprint()
