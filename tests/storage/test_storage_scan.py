"""Scan pushdown: chunk pruning must be invisible except in the counters."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import (
    And,
    Between,
    Comparison,
    DataFrame,
    IsIn,
    IsNull,
    Not,
    Or,
    RowIndexPredicate,
)
from repro.operators import ExploratoryStep, Filter, GroupBy
from repro.core import FedexConfig, FedexExplainer
from repro.storage import open_dataset, write_dataset


@pytest.fixture
def sorted_dataset(tmp_path):
    frame = DataFrame({
        "v": np.arange(100, dtype=np.int64),
        "f": np.where(np.arange(100) % 7 == 0, np.nan, np.arange(100, dtype=float)),
        "cat": np.asarray([["low", "mid", "high", None][i // 25] for i in range(100)],
                          dtype=object),
    })
    return frame, open_dataset(write_dataset(frame, tmp_path / "ds", chunk_rows=10))


def _check(frame, handle, predicate):
    got = handle.frame().predicate_mask(predicate)
    want = np.asarray(predicate.mask(frame), dtype=bool)
    assert np.array_equal(got, want), predicate.describe()


class TestPruningCorrectness:
    @pytest.mark.parametrize("predicate", [
        Comparison("v", ">", 89),
        Comparison("v", ">=", 90),
        Comparison("v", "<", 10),
        Comparison("v", "<=", 9),
        Comparison("v", "==", 55),
        Comparison("v", "!=", 55),
        Comparison("v", "==", -3),
        Comparison("f", ">", 95.0),
        Comparison("cat", "==", "high"),
        Comparison("cat", "==", "absent"),
        Comparison("cat", "!=", "mid"),
        Between("v", 20, 30),
        Between("v", 20, 30, inclusive_high=True),
        IsNull("f"),
        IsNull("v"),
        IsNull("cat"),
        IsIn("v", [5, 95]),
        IsIn("cat", ["low", "nope"]),
        IsIn("cat", [None]),
        And([Comparison("v", ">", 80), Comparison("cat", "==", "high")]),
        Or([Comparison("v", "<", 5), Comparison("v", ">", 95)]),
        Not(Comparison("v", ">", 50)),
    ])
    def test_mask_equals_unpruned(self, sorted_dataset, predicate):
        frame, handle = sorted_dataset
        _check(frame, handle, predicate)

    def test_pruning_actually_prunes(self, sorted_dataset):
        frame, handle = sorted_dataset
        opened = handle.frame()
        before = handle.scan.stats.chunks_pruned
        mask = opened.predicate_mask(Comparison("v", ">=", 90))
        assert mask.sum() == 10
        assert handle.scan.stats.chunks_pruned - before == 9

    def test_all_chunks_pruned(self, sorted_dataset):
        frame, handle = sorted_dataset
        mask = handle.frame().predicate_mask(Comparison("v", ">", 1_000))
        assert not mask.any()
        assert handle.scan.stats.chunks_scanned == 0

    def test_dataset_filter_api(self, sorted_dataset):
        frame, handle = sorted_dataset
        result = handle.scan.filter(Comparison("v", ">=", 95))
        assert result.num_rows == 5
        assert result["v"].tolist() == [95, 96, 97, 98, 99]

    def test_conjunction_prunes_via_both_sides(self, sorted_dataset):
        frame, handle = sorted_dataset
        predicate = And([Comparison("v", "<", 30), Comparison("cat", "==", "high")])
        before = handle.scan.stats.chunks_scanned
        mask = handle.frame().predicate_mask(predicate)
        assert not mask.any()
        # v<30 keeps chunks 0-2, cat=="high" keeps 5-7: intersection empty.
        assert handle.scan.stats.chunks_scanned == before


class TestFallbacks:
    def test_positional_predicate_falls_back(self, sorted_dataset):
        frame, handle = sorted_dataset
        predicate = RowIndexPredicate([0, 57, 99])
        before = handle.scan.stats.masks_fallback
        _check(frame, handle, predicate)
        assert handle.scan.stats.masks_fallback == before + 1

    def test_foreign_frame_falls_back(self, sorted_dataset):
        frame, handle = sorted_dataset
        foreign = frame.copy().attach_scan(handle.scan)
        predicate = Comparison("v", ">", 89)
        before = handle.scan.stats.masks_fallback
        mask = foreign.predicate_mask(predicate)
        assert np.array_equal(mask, predicate.mask(frame))
        assert handle.scan.stats.masks_fallback == before + 1

    def test_row_count_mismatch_falls_back(self, sorted_dataset):
        frame, handle = sorted_dataset
        shorter = frame.head(50).attach_scan(handle.scan)
        mask = shorter.predicate_mask(Comparison("v", ">", 10))
        assert mask.sum() == 39

    def test_unknown_column_error_is_preserved(self, sorted_dataset):
        _, handle = sorted_dataset
        with pytest.raises(Exception, match="unknown column"):
            handle.frame().predicate_mask(Comparison("nope", ">", 1))

    def test_type_error_surfaces_identically(self, sorted_dataset):
        frame, handle = sorted_dataset
        predicate = Comparison("v", ">", "not-a-number")
        with pytest.raises(ValueError):
            predicate.mask(frame)
        with pytest.raises(ValueError):
            handle.frame().predicate_mask(predicate)


class TestExplainOnStoredFilter:
    def test_filter_step_explained_with_pruning(self, sorted_dataset):
        """Explaining a filter over a stored frame uses — and survives — pruning."""
        frame, handle = sorted_dataset
        predicate = Comparison("v", ">=", 60)
        config = FedexConfig(seed=0)
        in_memory = FedexExplainer(config).explain(
            ExploratoryStep([frame], Filter(predicate))
        )
        scanned_before = handle.scan.stats.chunks_pruned
        stored = FedexExplainer(config).explain(
            ExploratoryStep([handle.frame()], Filter(predicate))
        )
        assert handle.scan.stats.chunks_pruned > scanned_before
        assert stored.skyline_keys() == in_memory.skyline_keys()
        for mine, theirs in zip(stored.all_candidates, in_memory.all_candidates):
            assert mine.key() == theirs.key()
            assert mine.contribution == theirs.contribution

    def test_groupby_pre_filter_explained_with_pruning(self, sorted_dataset):
        """The incremental group-by structure's pre-filter prunes chunks too."""
        frame, handle = sorted_dataset
        operation = GroupBy("cat", {"f": ["mean"]},
                            pre_filter=Comparison("v", ">=", 80))
        config = FedexConfig(seed=0)
        in_memory = FedexExplainer(config).explain(ExploratoryStep([frame], operation))
        pruned_before = handle.scan.stats.chunks_pruned
        stored = FedexExplainer(config).explain(
            ExploratoryStep([handle.frame()], operation)
        )
        assert handle.scan.stats.chunks_pruned > pruned_before
        assert stored.skyline_keys() == in_memory.skyline_keys()


# ------------------------------------------------------------------ hypothesis
_predicates = st.one_of(
    st.builds(Comparison, st.just("v"), st.sampled_from([">", ">=", "<", "<=", "==", "!="]),
              st.integers(-5, 25)),
    st.builds(Between, st.just("v"), st.integers(-5, 25), st.integers(-5, 25)),
    st.builds(IsNull, st.sampled_from(["v", "c"])),
    st.builds(Comparison, st.just("c"), st.sampled_from(["==", "!="]),
              st.sampled_from(["a", "b", "zz"])),
    st.builds(IsIn, st.just("c"), st.lists(st.sampled_from(["a", "b", None]),
                                           min_size=1, max_size=3)),
)


class TestPropertyPruning:
    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(st.one_of(st.integers(0, 20), st.just(None)),
                        min_size=1, max_size=30),
        cats=st.data(),
        chunk_rows=st.integers(min_value=1, max_value=7),
        predicate=_predicates,
    )
    def test_mask_matches_unpruned(self, values, cats, chunk_rows, predicate,
                                   tmp_path_factory):
        n = len(values)
        cat_values = cats.draw(
            st.lists(st.sampled_from(["a", "b", None]), min_size=n, max_size=n)
        )
        frame = DataFrame({
            "v": np.asarray([np.nan if v is None else float(v) for v in values]),
            "c": np.asarray(cat_values, dtype=object),
        })
        target = tmp_path_factory.mktemp("scan") / "ds"
        handle = open_dataset(write_dataset(frame, target, chunk_rows=chunk_rows))
        got = handle.frame().predicate_mask(predicate)
        want = np.asarray(predicate.mask(frame), dtype=bool)
        assert np.array_equal(got, want)
