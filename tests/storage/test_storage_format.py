"""Round-trip tests of the columnar dataset format (incl. hypothesis)."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from storage_testutil import assert_round_trip
from repro.dataframe import DataFrame
from repro.errors import StorageError
from repro.storage import open_dataset, read_dataset, write_dataset
from repro.storage.format import (
    FORMAT_VERSION,
    HEADER_SIZE,
    MAGIC,
    MANIFEST_NAME,
    chunk_ranges,
    decode_scalar,
    encode_scalar,
)


@pytest.fixture
def mixed_frame() -> DataFrame:
    return DataFrame({
        "f": np.asarray([1.5, np.nan, -2.0, 0.0, 3.25, np.nan]),
        "i": np.asarray([7, -1, 0, 3, 9, 2], dtype=np.int64),
        "b": np.asarray([True, False, True, True, False, False]),
        "cat": np.asarray(["pop", None, "rock", "", "ünïcode", "pop"], dtype=object),
        "mixed": np.asarray([1, "1", None, 2.5, True, float("nan")], dtype=object),
    })


class TestRoundTrip:
    def test_mixed_frame(self, mixed_frame, tmp_path):
        write_dataset(mixed_frame, tmp_path / "ds", chunk_rows=4)
        assert_round_trip(mixed_frame, read_dataset(tmp_path / "ds"))

    def test_single_chunk_and_many_chunks_agree(self, mixed_frame, tmp_path):
        write_dataset(mixed_frame, tmp_path / "one", chunk_rows=1_000)
        write_dataset(mixed_frame, tmp_path / "many", chunk_rows=2)
        assert_round_trip(read_dataset(tmp_path / "one"), read_dataset(tmp_path / "many"))

    def test_empty_frame(self, tmp_path):
        empty = DataFrame({"x": np.asarray([], dtype=float),
                           "c": np.asarray([], dtype=object)})
        write_dataset(empty, tmp_path / "ds")
        loaded = read_dataset(tmp_path / "ds")
        assert loaded.num_rows == 0
        assert_round_trip(empty, loaded)

    def test_all_null_columns(self, tmp_path):
        frame = DataFrame({
            "f": np.asarray([np.nan, np.nan, np.nan]),
            "c": np.asarray([None, None, None], dtype=object),
        })
        write_dataset(frame, tmp_path / "ds", chunk_rows=2)
        assert_round_trip(frame, read_dataset(tmp_path / "ds"))

    def test_single_row(self, tmp_path):
        frame = DataFrame({"x": np.asarray([4.0]), "c": np.asarray(["only"], dtype=object)})
        write_dataset(frame, tmp_path / "ds")
        assert_round_trip(frame, read_dataset(tmp_path / "ds"))

    def test_trailing_nul_strings_survive(self, tmp_path):
        """Trailing NULs defeat the factorization fast path; values must survive."""
        frame = DataFrame({"c": np.asarray(["a\x00", "a", "b", "a\x00\x00"], dtype=object)})
        write_dataset(frame, tmp_path / "ds")
        loaded = read_dataset(tmp_path / "ds")
        assert loaded["c"].tolist() == frame["c"].tolist()
        assert loaded["c"].fingerprint() == frame["c"].fingerprint()

    def test_chunk_columns_never_alias_fingerprints(self, tmp_path):
        """Identical code buffers under different dictionaries must not collide."""
        frame = DataFrame({
            "city": np.asarray(["NY", "SF", "NY"], dtype=object),
            "country": np.asarray(["US", "UK", "US"], dtype=object),
        })
        handle = open_dataset(write_dataset(frame, tmp_path / "ds", chunk_rows=2))
        city = handle.chunk_column("city", 0)
        country = handle.chunk_column("country", 0)
        assert city.fingerprint() != country.fingerprint()
        assert city.fingerprint() == frame["city"].take(np.asarray([0, 1])).fingerprint()

    def test_unicode_u_dtype_column(self, tmp_path):
        frame = DataFrame({"g": np.asarray(["αβγ", "jazz", "αβγ"])})
        assert frame["g"].is_categorical
        write_dataset(frame, tmp_path / "ds")
        loaded = read_dataset(tmp_path / "ds")
        assert loaded["g"].tolist() == frame["g"].tolist()
        assert loaded["g"].fingerprint() == frame["g"].fingerprint()

    def test_factorize_seeded_from_dictionary(self, mixed_frame, tmp_path):
        write_dataset(mixed_frame, tmp_path / "ds")
        loaded = read_dataset(tmp_path / "ds")
        codes, uniques = loaded["cat"].factorize()
        expect_codes, expect_uniques = mixed_frame["cat"].factorize()
        assert uniques == expect_uniques
        assert np.array_equal(codes, expect_codes)
        # Pre-seeded: available without the values ever being materialised.
        fresh = open_dataset(tmp_path / "ds").column("cat")
        assert fresh._factorized is not None
        assert fresh._data is None

    def test_overwrite_flag(self, mixed_frame, tmp_path):
        write_dataset(mixed_frame, tmp_path / "ds")
        with pytest.raises(StorageError):
            write_dataset(mixed_frame, tmp_path / "ds")
        write_dataset(mixed_frame.head(2), tmp_path / "ds", overwrite=True)
        assert read_dataset(tmp_path / "ds").num_rows == 2

    def test_verify_detects_corruption(self, mixed_frame, tmp_path):
        path = write_dataset(mixed_frame, tmp_path / "ds", chunk_rows=3)
        open_dataset(path).verify()
        target = path / "c1.bin"
        blob = bytearray(target.read_bytes())
        blob[-1] ^= 0xFF
        target.write_bytes(bytes(blob))
        with pytest.raises(StorageError, match="fingerprint"):
            open_dataset(path).verify()


class TestFormatValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError, match="missing"):
            open_dataset(tmp_path)

    def test_bad_manifest_magic(self, mixed_frame, tmp_path):
        path = write_dataset(mixed_frame, tmp_path / "ds")
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["magic"] = "NOTADATA"
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StorageError, match="magic"):
            open_dataset(path)

    def test_future_version_rejected(self, mixed_frame, tmp_path):
        path = write_dataset(mixed_frame, tmp_path / "ds")
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["version"] = FORMAT_VERSION + 1
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StorageError, match="version"):
            open_dataset(path)

    def test_bad_binary_magic(self, mixed_frame, tmp_path):
        path = write_dataset(mixed_frame, tmp_path / "ds")
        target = path / "c0.bin"
        blob = bytearray(target.read_bytes())
        blob[:8] = b"XXXXXXXX"
        target.write_bytes(bytes(blob))
        with pytest.raises(StorageError, match="magic"):
            read_dataset(path)["f"].values

    def test_truncated_binary_rejected(self, mixed_frame, tmp_path):
        path = write_dataset(mixed_frame, tmp_path / "ds")
        target = path / "c0.bin"
        target.write_bytes(target.read_bytes()[:HEADER_SIZE + 8])
        with pytest.raises(StorageError, match="bytes"):
            read_dataset(path)["f"].values

    def test_header_layout(self, mixed_frame, tmp_path):
        path = write_dataset(mixed_frame, tmp_path / "ds")
        header = (path / "c0.bin").read_bytes()[:HEADER_SIZE]
        assert header[:8] == MAGIC
        assert int.from_bytes(header[8:12], "little") == FORMAT_VERSION

    def test_chunk_ranges(self):
        assert chunk_ranges(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert chunk_ranges(0, 4) == []
        with pytest.raises(StorageError):
            chunk_ranges(10, 0)

    def test_scalar_coding_round_trip(self):
        for value in [None, "s", "", 3, -1, 2.5, float("nan"), float("inf"),
                      float("-inf"), True, False]:
            decoded = decode_scalar(encode_scalar(value))
            if isinstance(value, float) and np.isnan(value):
                assert np.isnan(decoded)
            else:
                assert decoded == value and type(decoded) is type(value)


# ---------------------------------------------------------------- hypothesis
_text = st.text(max_size=8)
_cat_value = st.one_of(st.none(), _text, st.integers(-5, 5), st.booleans())
_float_value = st.one_of(
    st.floats(allow_nan=True, allow_infinity=True, width=64), st.just(np.nan)
)


@st.composite
def frames(draw) -> DataFrame:
    n_rows = draw(st.integers(min_value=0, max_value=12))
    columns = {}
    columns["num"] = np.asarray(
        draw(st.lists(_float_value, min_size=n_rows, max_size=n_rows)), dtype=float
    )
    columns["int"] = np.asarray(
        draw(st.lists(st.integers(-100, 100), min_size=n_rows, max_size=n_rows)),
        dtype=np.int64,
    )
    columns["cat"] = np.asarray(
        draw(st.lists(_cat_value, min_size=n_rows, max_size=n_rows)), dtype=object
    )
    return DataFrame(columns)


class TestPropertyRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(frame=frames(), chunk_rows=st.integers(min_value=1, max_value=6))
    def test_round_trip(self, frame, chunk_rows, tmp_path_factory):
        target = tmp_path_factory.mktemp("storage") / "ds"
        write_dataset(frame, target, chunk_rows=chunk_rows)
        assert_round_trip(frame, read_dataset(target))
