"""Figure 5: insights gathered in 10 minutes, unassisted vs FEDEX-assisted EDA.

Paper result: 1 vs 2.5 insights on the Credit Card dataset and 2.5 vs 9.5 on
Spotify — assisted exploration finds roughly 4 more insights on average.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import print_table, run_interactive_study


def test_figure5_interactive_study(benchmark, bench_registry):
    rows = run_once(benchmark, run_interactive_study, bench_registry, seed=17)
    print_table(rows, title="Figure 5 — insights found in a 10-minute session (simulated)")

    by_key = {(row["dataset"], row["mode"]): row["insights"] for row in rows}
    for dataset in ("spotify", "bank"):
        assert by_key[(dataset, "fedex-assisted")] > by_key[(dataset, "unassisted")]
    gain = sum(by_key[(d, "fedex-assisted")] - by_key[(d, "unassisted")] for d in ("spotify", "bank")) / 2
    print_table([{"mean_insight_gain": gain}], title="Figure 5 — mean gain from FEDEX assistance")
    assert gain >= 2.0
