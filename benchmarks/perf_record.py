"""Persisted benchmark trajectory: every bench run appends to BENCH_*.json.

One-off benchmark timings evaporate with the terminal scrollback; a perf
regression then has nothing to be compared against.  Every ``bench_*.py``
therefore writes its results through :func:`record`, which appends one run
record — results plus enough host context to judge comparability — to an
area file (``BENCH_backends.json``, ``BENCH_session.json``,
``BENCH_service.json``, ``BENCH_storage.json``) next to the repo root.
The files are committed, so the trajectory is visible across PRs: a change
that halves the process-pool speedup shows up as a diff, not as a memory.

Records are judged *per host*: absolute latencies move with the machine,
so cross-host comparisons should use the ratio fields (``speedup``,
``warm_speedup``...), which are dimensionless, and the ``host`` block to
decide whether two runs are comparable at all.

File format (one JSON document per area)::

    {"area": "backends", "schema": 1, "runs": [ {run}, {run}, ... ]}

Each run carries ``recorded_at`` (UTC ISO), a ``host`` block (python,
platform, machine, cpu count, GIL status), and the benchmark's own payload
verbatim.  A corrupt or foreign file is never fatal — recording starts the
document over (benchmarks must keep working on a clobbered checkout).

Set ``REPRO_BENCH_DIR`` to redirect the files (CI artifacts, experiments);
set ``REPRO_BENCH_RECORD=0`` to disable persistence entirely.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import sysconfig
import tempfile
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Optional

#: Format version of the BENCH_*.json documents.
SCHEMA_VERSION = 1

#: Cap on retained runs per area file: the trajectory should show a trend,
#: not grow without bound over years of CI appends.  Oldest runs roll off.
MAX_RUNS = 500


def bench_dir() -> Path:
    """Directory the BENCH_*.json files live in (repo root by default)."""
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent


def recording_enabled() -> bool:
    """Whether bench runs persist their results (``REPRO_BENCH_RECORD``)."""
    return os.environ.get("REPRO_BENCH_RECORD", "1") != "0"


def host_info() -> Dict[str, object]:
    """The host context stamped onto every run record."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "gil_disabled": bool(sysconfig.get_config_var("Py_GIL_DISABLED")),
    }


def load_area(area: str, path: Optional[Path] = None) -> Dict[str, object]:
    """The current document of one area (a fresh one if absent/corrupt)."""
    path = path or bench_dir() / f"BENCH_{area}.json"
    fresh: Dict[str, object] = {"area": area, "schema": SCHEMA_VERSION, "runs": []}
    try:
        loaded = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return fresh
    if (not isinstance(loaded, dict) or loaded.get("area") != area
            or not isinstance(loaded.get("runs"), list)):
        return fresh
    loaded["schema"] = SCHEMA_VERSION
    return loaded


def record(area: str, payload: Dict[str, object],
           path: Optional[Path] = None) -> Optional[Path]:
    """Append one run record to the area's BENCH_*.json file.

    ``payload`` is the benchmark's own result dictionary (latencies in
    seconds, speedup ratios, worker counts, status) and is stored verbatim
    under the stamped envelope.  Returns the file written, or ``None`` when
    recording is disabled.  The write is atomic (temp file + rename) so a
    crashed bench run can corrupt at most nothing.
    """
    if not recording_enabled():
        return None
    path = Path(path) if path is not None else bench_dir() / f"BENCH_{area}.json"
    document = load_area(area, path)
    run = {
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": host_info(),
        **payload,
    }
    document["runs"] = (document["runs"] + [run])[-MAX_RUNS:]
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", dir=str(path.parent), prefix=path.name + ".", delete=False
    )
    try:
        with handle:
            json.dump(document, handle, indent=2, sort_keys=False)
            handle.write("\n")
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return path


def latest_run(area: str, path: Optional[Path] = None) -> Optional[Dict[str, object]]:
    """The most recent recorded run of one area, if any."""
    runs = load_area(area, path)["runs"]
    return runs[-1] if runs else None


if __name__ == "__main__":  # pragma: no cover - manual inspection aid
    for area in ("backends", "session", "service", "storage"):
        run = latest_run(area)
        if run is None:
            print(f"{area}: no recorded runs")
        else:
            summary = {k: v for k, v in run.items() if k not in ("host",)}
            print(f"{area}: {json.dumps(summary, default=str)[:300]}")
    sys.exit(0)
