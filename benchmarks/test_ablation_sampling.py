"""Ablation: the fedex-Sampling optimization — speed vs accuracy at the 5K point.

Complements Figures 7 and 10 with a direct before/after comparison of the one
optimization the paper ships: interestingness on a 5K uniform sample.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.core import FedexConfig, FedexExplainer
from repro.experiments import compare_reports, print_table
from repro.workloads import get_query

_QUERIES = (4, 6, 7, 13, 21)


def _run_ablation(registry):
    rows = []
    for number in _QUERIES:
        step = get_query(number).build_step(registry)
        started = time.perf_counter()
        exact = FedexExplainer(FedexConfig(sample_size=None, seed=0)).explain(step)
        exact_seconds = time.perf_counter() - started
        started = time.perf_counter()
        sampled = FedexExplainer(FedexConfig(sample_size=5_000, seed=0)).explain(step)
        sampled_seconds = time.perf_counter() - started
        metrics = compare_reports(exact, sampled)
        rows.append({
            "query": number,
            "exact_seconds": exact_seconds,
            "sampling_seconds": sampled_seconds,
            "speedup": exact_seconds / max(sampled_seconds, 1e-9),
            **metrics,
        })
    return rows


def test_ablation_sampling_optimization(benchmark, bench_registry):
    rows = run_once(benchmark, _run_ablation, bench_registry)
    print_table(rows, title="Ablation — exact FEDEX vs fedex-Sampling (5K sample)")

    assert all(row["precision_at_k"] >= 0.6 for row in rows)
    assert all(row["ndcg"] >= 0.85 for row in rows)
    # Sampling must never be catastrophically slower than exact.
    assert all(row["sampling_seconds"] <= row["exact_seconds"] * 2.0 + 0.5 for row in rows)
