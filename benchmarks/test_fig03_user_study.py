"""Figure 3: simulated user study — explanation quality per system per dataset.

Paper result: Expert explanations score highest; among automatic systems
FEDEX is clearly preferred (average ~5.1–5.6) over IO (~3.2–4.4), SeeDB
(~3.0–3.8) and Rath (~2.8–2.9) — roughly 1.7x more helpful than the common
baselines.  The simulated judge reproduces the ordering and the ratio, not
the absolute Likert values.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import print_table, run_user_study


def test_figure3_user_study(benchmark, bench_registry):
    rows = run_once(benchmark, run_user_study, bench_registry, seed=17)
    print_table(
        rows,
        columns=["dataset", "system", "coherency", "insight", "usefulness", "average"],
        title="Figure 3 — simulated user study scores (1-7 scale)",
    )
    means = {}
    for row in rows:
        means.setdefault(row["system"], []).append(row["average"])
    means = {system: float(np.mean(values)) for system, values in means.items()}
    print_table([{"system": s, "average": v} for s, v in sorted(means.items(), key=lambda kv: -kv[1])],
                title="Figure 3 — overall averages")

    assert means["FEDEX"] > means["IO"] > min(means["SeeDB"], means["Rath"])
    baselines = np.mean([means["SeeDB"], means["Rath"], means["IO"]])
    assert means["FEDEX"] / baselines > 1.4
    assert abs(means["Expert"] - means["FEDEX"]) < 1.5
