"""Figure 8: accuracy of fedex-Sampling (fixed 5K sample) as the data grows.

Paper result: on the Products & Sales dataset the accuracy stays high for all
row counts — at 3M rows precision@3 is 0.94, Kendall-tau 8.1, nDCG 0.9985.
The reproduced sweep must show accuracy staying high (no degradation trend)
as the view grows.
"""

from __future__ import annotations

from conftest import bench_scale, run_once

from repro.experiments import mean_rows, print_table, rows_accuracy_sweep

_ROW_COUNTS = {
    "small": (5_000, 10_000, 20_000),
    "medium": (20_000, 60_000, 120_000),
    "full": (200_000, 1_000_000, 3_000_000),
}


def test_figure8_rows_accuracy(benchmark, registry_factory):
    row_counts = _ROW_COUNTS.get(bench_scale(), _ROW_COUNTS["small"])
    rows = run_once(benchmark, rows_accuracy_sweep, registry_factory,
                    row_counts=row_counts, query_numbers=(4, 5), sample_size=5_000, seed=0)
    means = mean_rows(rows, "rows")
    print_table(means, columns=["rows", "precision_at_k", "kendall_tau", "ndcg"],
                title="Figure 8 — fedex-Sampling (5K) accuracy vs number of rows (Products & Sales)")

    assert all(row["precision_at_k"] >= 0.75 for row in means)
    assert all(row["ndcg"] >= 0.85 for row in means)
