"""Figure 4: explanation generation time — FEDEX vs manually-authored expert notes.

Paper result: experts need minutes per operation while FEDEX answers at
interactive speed; the gap is several orders of magnitude.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import print_table, run_generation_time_study


def test_figure4_generation_time(benchmark, bench_registry):
    rows = run_once(benchmark, run_generation_time_study, bench_registry, seed=17)
    print_table(rows, title="Figure 4 — explanation generation time (seconds)")

    fedex_mean = float(np.mean([row["fedex_seconds"] for row in rows]))
    expert_mean = float(np.mean([row["expert_seconds"] for row in rows]))
    print_table([{"system": "FEDEX", "mean_seconds": fedex_mean},
                 {"system": "Expert", "mean_seconds": expert_mean}],
                title="Figure 4 — means")
    assert expert_mean > 60.0
    assert expert_mean / fedex_mean > 10.0
