"""Backend equivalence + runtime over the full 30-query evaluation workload.

The acceptance bar of the backend layer: on every workload query the
incremental backend must reproduce the exact rerun backend — identical
skyline keys and candidate pools, contribution scores within ``1e-9`` —
while spending less wall-clock time in the contribution phase.  Prints a
per-query comparison table with the exact/incremental contribution-phase
timings and the speedup.
"""

from __future__ import annotations

from conftest import run_once

from repro.core import FedexConfig, FedexExplainer
from repro.experiments import print_table
from repro.workloads import WORKLOAD


def _compare_backends(registry):
    rows = []
    for query in WORKLOAD:
        step = query.build_step(registry)
        exact = FedexExplainer(FedexConfig(backend="exact", seed=0)).explain(step)
        incremental = FedexExplainer(FedexConfig(backend="incremental", seed=0)).explain(step)

        exact_scores = {
            c.key(): (c.contribution, c.standardized_contribution)
            for c in exact.all_candidates
        }
        incremental_scores = {
            c.key(): (c.contribution, c.standardized_contribution)
            for c in incremental.all_candidates
        }
        max_delta = 0.0
        if set(exact_scores) == set(incremental_scores):
            for key, (raw, std) in exact_scores.items():
                raw_i, std_i = incremental_scores[key]
                max_delta = max(max_delta, abs(raw - raw_i), abs(std - std_i))
        else:
            max_delta = float("inf")

        exact_seconds = exact.timings.get("contribution", 0.0)
        incremental_seconds = incremental.timings.get("contribution", 0.0)
        rows.append({
            "query": query.number,
            "dataset": query.dataset,
            "kind": query.kind,
            "skyline_equal": exact.skyline_keys() == incremental.skyline_keys(),
            "max_score_delta": max_delta,
            "exact_s": exact_seconds,
            "incremental_s": incremental_seconds,
            "speedup": exact_seconds / max(incremental_seconds, 1e-9),
        })
    return rows


def test_backend_equivalence_over_workload(benchmark, bench_registry):
    rows = run_once(benchmark, _compare_backends, bench_registry)
    print_table(rows, title="Exact vs incremental backend over the 30-query workload")
    assert len(rows) == 30
    mismatched = [row["query"] for row in rows if not row["skyline_equal"]]
    assert not mismatched, f"queries with diverging skylines: {mismatched}"
    drifted = [row["query"] for row in rows if not row["max_score_delta"] <= 1e-9]
    assert not drifted, f"queries with score drift above 1e-9: {drifted}"
    # The incremental backend should win in aggregate (per-query timings can
    # be noisy for the smallest steps, the total must not be).
    total_exact = sum(row["exact_s"] for row in rows)
    total_incremental = sum(row["incremental_s"] for row in rows)
    assert total_incremental < total_exact, (
        f"incremental contribution phase slower in aggregate: "
        f"{total_incremental:.2f}s vs {total_exact:.2f}s"
    )
