"""Backend equivalence + runtime over the full 30-query evaluation workload.

The acceptance bar of the backend layer: on every workload query the
incremental backend must reproduce the exact rerun backend — identical
skyline keys and candidate pools, contribution scores within ``1e-9`` —
while spending less wall-clock time in the contribution phase, and the
parallel backend must be deterministic: identical skylines and scores
within ``1e-9`` of the serial incremental backend regardless of worker
count.  Prints a per-query comparison table with the per-backend
contribution-phase timings and the speedup.

The storage layer's acceptance bar rides in the same harness: every query
re-run against tables opened from a :class:`~repro.storage.DatasetStore`
(mmap-backed frames, scan pushdown active) must produce **bit-identical**
reports — identical skylines, score deltas of exactly zero — versus the
in-memory frames.

The process backend has two passes of its own: the 30 queries over
*in-memory* tables (spilled to the content-addressed temp store and shipped
to the workers as mmap descriptors — ``spill_bytes=0`` forces every input
through the spill path) and over *store-backed* tables (descriptors minted
straight off the dataset store, no spill); both must match the serial
incremental backend — identical skylines, scores within ``1e-9``.

The worker count defaults to 2 and can be overridden with the
``REPRO_WORKERS`` environment variable (the CI matrix runs this suite with
``REPRO_WORKERS=2`` on every python version; the ``backend-process`` job
re-runs it with 2 process workers).
"""

from __future__ import annotations

import os

import pytest
from conftest import run_once, scale_sizes

from repro.core import FedexConfig, FedexExplainer
from repro.datasets import DatasetRegistry
from repro.experiments import print_table
from repro.storage import DatasetStore
from repro.workloads import WORKLOAD


def _workers() -> int:
    return int(os.environ.get("REPRO_WORKERS", "2"))


def _scores(report):
    return {
        c.key(): (c.contribution, c.standardized_contribution)
        for c in report.all_candidates
    }


def _max_delta(reference, other):
    """Max absolute score difference, inf when the candidate pools differ."""
    if set(reference) != set(other):
        return float("inf")
    deltas = [
        max(abs(raw - other[key][0]), abs(std - other[key][1]))
        for key, (raw, std) in reference.items()
    ]
    return max(deltas, default=0.0)


def _compare_backends(registry):
    rows = []
    for query in WORKLOAD:
        step = query.build_step(registry)
        exact = FedexExplainer(FedexConfig(backend="exact", seed=0)).explain(step)
        incremental = FedexExplainer(FedexConfig(backend="incremental", seed=0)).explain(step)
        parallel = FedexExplainer(
            FedexConfig(backend="parallel", workers=_workers(), seed=0)
        ).explain(step)
        # The same pool with forced tiny batches: batching may change how
        # jobs are cut, never a float.
        batched = FedexExplainer(
            FedexConfig(backend="parallel", workers=_workers(), shard_batch=3, seed=0)
        ).explain(step)

        incremental_scores = _scores(incremental)
        rows.append({
            "query": query.number,
            "dataset": query.dataset,
            "kind": query.kind,
            "skyline_equal": exact.skyline_keys() == incremental.skyline_keys(),
            "parallel_skyline_equal": incremental.skyline_keys() == parallel.skyline_keys(),
            "batched_skyline_equal": incremental.skyline_keys() == batched.skyline_keys(),
            "max_score_delta": _max_delta(_scores(exact), incremental_scores),
            "parallel_delta": _max_delta(incremental_scores, _scores(parallel)),
            "batched_delta": _max_delta(incremental_scores, _scores(batched)),
            "exact_s": exact.timings.get("contribution", 0.0),
            "incremental_s": incremental.timings.get("contribution", 0.0),
            "parallel_s": parallel.timings.get("contribution", 0.0),
        })
    for row in rows:
        row["speedup"] = row["exact_s"] / max(row["incremental_s"], 1e-9)
    return rows


def test_backend_equivalence_over_workload(benchmark, bench_registry):
    rows = run_once(benchmark, _compare_backends, bench_registry)
    print_table(rows, title="Exact vs incremental vs parallel over the 30-query workload")
    assert len(rows) == 30
    mismatched = [row["query"] for row in rows if not row["skyline_equal"]]
    assert not mismatched, f"queries with diverging skylines: {mismatched}"
    drifted = [row["query"] for row in rows if not row["max_score_delta"] <= 1e-9]
    assert not drifted, f"queries with score drift above 1e-9: {drifted}"
    # Determinism of the parallel backend against its serial counterpart.
    parallel_mismatched = [row["query"] for row in rows if not row["parallel_skyline_equal"]]
    assert not parallel_mismatched, (
        f"queries where parallel skylines diverge: {parallel_mismatched}"
    )
    parallel_drifted = [row["query"] for row in rows if not row["parallel_delta"] <= 1e-9]
    assert not parallel_drifted, (
        f"queries with parallel score drift above 1e-9: {parallel_drifted}"
    )
    # Shard batching on the thread pool must be invisible to the results.
    batched_mismatched = [row["query"] for row in rows if not row["batched_skyline_equal"]]
    assert not batched_mismatched, (
        f"queries where batched-parallel skylines diverge: {batched_mismatched}"
    )
    batched_drifted = [row["query"] for row in rows if not row["batched_delta"] <= 1e-9]
    assert not batched_drifted, (
        f"queries with batched-parallel score drift above 1e-9: {batched_drifted}"
    )
    # The incremental backend should win in aggregate (per-query timings can
    # be noisy for the smallest steps, the total must not be).
    total_exact = sum(row["exact_s"] for row in rows)
    total_incremental = sum(row["incremental_s"] for row in rows)
    assert total_incremental < total_exact, (
        f"incremental contribution phase slower in aggregate: "
        f"{total_incremental:.2f}s vs {total_exact:.2f}s"
    )


def _compare_store_backed(memory_registry, store_registry):
    rows = []
    for query in WORKLOAD:
        config = FedexConfig(seed=0)
        memory = FedexExplainer(config).explain(query.build_step(memory_registry))
        stored = FedexExplainer(config).explain(query.build_step(store_registry))
        rows.append({
            "query": query.number,
            "dataset": query.dataset,
            "kind": query.kind,
            "skyline_equal": memory.skyline_keys() == stored.skyline_keys(),
            "max_score_delta": _max_delta(_scores(memory), _scores(stored)),
        })
    return rows


def test_store_backed_equivalence_over_workload(benchmark, bench_registry,
                                                tmp_path_factory):
    """All 30 queries are bit-identical on DatasetStore-opened (mmap) frames."""
    store = DatasetStore(tmp_path_factory.mktemp("equivalence-store"))
    store_registry = DatasetRegistry(seed=0, store=store, **scale_sizes())
    rows = run_once(benchmark, _compare_store_backed, bench_registry, store_registry)
    print_table(rows, title="In-memory vs DatasetStore-backed over the 30-query workload")
    assert len(rows) == 30
    mismatched = [row["query"] for row in rows if not row["skyline_equal"]]
    assert not mismatched, f"queries with diverging skylines: {mismatched}"
    # Bit-identical is the bar: same values in, same floats out — zero delta.
    drifted = [row["query"] for row in rows if row["max_score_delta"] != 0.0]
    assert not drifted, f"queries with non-identical scores: {drifted}"


#: Serial reference reports per registry identity — the process pass runs
#: once per shard_batch setting, the incremental reference need only run once.
_INCREMENTAL_MEMO: dict = {}


def _incremental_reference(registry, query):
    memo = _INCREMENTAL_MEMO.setdefault(id(registry), {})
    report = memo.get(query.number)
    if report is None:
        report = FedexExplainer(FedexConfig(backend="incremental", seed=0)).explain(
            query.build_step(registry)
        )
        memo[query.number] = report
    return report


def _compare_process(registry, spill_bytes, shard_batch=None):
    from repro.core.backends.process import PROCESS_STATS

    PROCESS_STATS.reset()
    process_config = FedexConfig(
        backend="process", workers=_workers(), spill_bytes=spill_bytes,
        shard_batch=shard_batch, seed=0,
    )
    rows = []
    for query in WORKLOAD:
        step = query.build_step(registry)
        incremental = _incremental_reference(registry, query)
        process = FedexExplainer(process_config).explain(step)
        rows.append({
            "query": query.number,
            "dataset": query.dataset,
            "kind": query.kind,
            "skyline_equal": incremental.skyline_keys() == process.skyline_keys(),
            "max_score_delta": _max_delta(_scores(incremental), _scores(process)),
            "incremental_s": incremental.timings.get("contribution", 0.0),
            "process_s": process.timings.get("contribution", 0.0),
        })
    return rows, PROCESS_STATS.as_dict()


def _assert_process_rows(rows, stats) -> None:
    assert len(rows) == 30
    mismatched = [row["query"] for row in rows if not row["skyline_equal"]]
    assert not mismatched, f"queries where process skylines diverge: {mismatched}"
    drifted = [row["query"] for row in rows if not row["max_score_delta"] <= 1e-9]
    assert not drifted, f"queries with process score drift above 1e-9: {drifted}"
    # The pass must not be vacuous: a regression that silently downgraded
    # every request to the serial fallback would compare incremental with
    # itself.  Shards must really have crossed processes, none retried.
    assert stats["shards_completed"] > 0, f"process path never ran: {stats}"
    assert stats["shards_completed"] == stats["shards_submitted"], stats
    assert stats["serial_retries"] == 0, f"workers failed mid-workload: {stats}"


@pytest.mark.parametrize("shard_batch", [1, 3, None],
                         ids=["batch1", "batch3", "auto"])
def test_process_backend_equivalence_in_memory(benchmark, bench_registry, shard_batch):
    """Process == incremental on all 30 queries over in-memory (spilled) frames.

    Parametrized over the shard-batch setting: per-pair dispatch (the
    pre-batching behaviour), a forced tiny batch, and the automatic policy
    all have to produce the same skylines and scores — batching is a
    dispatch optimisation, never an observable.
    """
    rows, stats = run_once(benchmark, _compare_process, bench_registry, 0,
                           shard_batch=shard_batch)
    print_table(rows, title=(
        f"Incremental vs process ({_workers()} workers, spilled in-memory frames, "
        f"shard_batch={shard_batch}) over the 30-query workload — "
        f"{stats['shards_completed']} shards in {stats['batches_submitted']} batches"
    ))
    _assert_process_rows(rows, stats)
    # Batch accounting: pairs per batch can never undercount, and a forced
    # batch of 3 must genuinely amortize (fewer submissions than pairs).
    assert stats["batches_submitted"] <= stats["shards_submitted"], stats
    if shard_batch == 1:
        assert stats["batches_submitted"] == stats["shards_submitted"], stats
    else:
        assert stats["batches_submitted"] < stats["shards_submitted"], stats


def _compare_traced(registry, dump_path):
    from repro.obs.trace import read_traces, tracing

    rows = []
    config = FedexConfig(seed=0)
    for query in WORKLOAD:
        step = query.build_step(registry)
        with tracing(False):
            untraced = FedexExplainer(config).explain(step)
        with tracing(True):
            traced = FedexExplainer(config).explain(step)
        trace = traced.trace
        names = set(trace.span_names()) if trace is not None else set()
        rows.append({
            "query": query.number,
            "dataset": query.dataset,
            "kind": query.kind,
            "skyline_equal": untraced.skyline_keys() == traced.skyline_keys(),
            "max_score_delta": _max_delta(_scores(untraced), _scores(traced)),
            "has_trace": trace is not None,
            "phases_traced": {
                "phase1.interestingness", "phase2.partitioning",
                "phase3.contribution",
            } <= names,
        })
    dumped = read_traces(dump_path) if os.path.exists(dump_path) else []
    return rows, dumped


def test_traced_equivalence_over_workload(benchmark, bench_registry,
                                          tmp_path_factory, monkeypatch):
    """Tracing is an observer: all 30 queries bit-identical traced vs untraced.

    The untraced side runs under ``tracing(False)`` so the comparison stays
    meaningful even when the harness itself exports ``REPRO_TRACE`` (the CI
    observability job does); the traced side dumps every trace to a JSONL
    file, which must load back with one well-formed trace per query.
    """
    dump = str(tmp_path_factory.mktemp("traces") / "workload.jsonl")
    monkeypatch.setenv("REPRO_TRACE", dump)
    rows, dumped = run_once(benchmark, _compare_traced, bench_registry, dump)
    print_table(rows, title="Untraced vs traced over the 30-query workload")
    assert len(rows) == 30
    mismatched = [row["query"] for row in rows if not row["skyline_equal"]]
    assert not mismatched, f"queries where traced skylines diverge: {mismatched}"
    # Bit-identical is the bar: tracing must never perturb a float.
    drifted = [row["query"] for row in rows if row["max_score_delta"] != 0.0]
    assert not drifted, f"queries where tracing changed scores: {drifted}"
    untrace = [row["query"] for row in rows if not row["has_trace"]]
    assert not untrace, f"queries whose traced run carried no trace: {untrace}"
    unphased = [row["query"] for row in rows if not row["phases_traced"]]
    assert not unphased, f"queries missing phase spans: {unphased}"
    # The env dump round-trips: one trace per traced explain, phases intact.
    assert len(dumped) == 30, f"JSONL dump holds {len(dumped)} traces, want 30"
    assert all(trace.find("explain") for trace in dumped)


def test_process_backend_equivalence_store_backed(benchmark, tmp_path_factory):
    """Process == incremental on all 30 queries over DatasetStore-backed frames.

    The stored base tables cross as descriptors minted straight off the
    store — no spill; queries over *derived* inputs (filtered/unioned
    frames, which are plain in-memory frames again) follow the spill
    policy, which at the default threshold can keep the smallest ones
    serial by design.
    """
    store = DatasetStore(tmp_path_factory.mktemp("process-store"))
    store_registry = DatasetRegistry(seed=0, store=store, **scale_sizes())
    rows, stats = run_once(benchmark, _compare_process, store_registry, None)
    print_table(rows, title=(
        f"Incremental vs process ({_workers()} workers, store-backed frames) "
        f"over the 30-query workload — {stats['shards_completed']} shards crossed "
        "processes"
    ))
    _assert_process_rows(rows, stats)


def _compare_exported(registry, sink_path):
    from repro.obs.export import (
        SpanExporter,
        install_span_exporter,
        uninstall_span_exporter,
    )
    from repro.obs.trace import tracing

    rows = []
    config = FedexConfig(seed=0)
    exporter = SpanExporter(sink_path)
    install_span_exporter(exporter, key="equivalence-bench")
    try:
        for query in WORKLOAD:
            step = query.build_step(registry)
            with tracing(False):
                plain = FedexExplainer(config).explain(step)
            with tracing(True):
                exported = FedexExplainer(config).explain(step)
            rows.append({
                "query": query.number,
                "dataset": query.dataset,
                "kind": query.kind,
                "skyline_equal": plain.skyline_keys() == exported.skyline_keys(),
                "max_score_delta": _max_delta(_scores(plain), _scores(exported)),
            })
        drained = exporter.flush(30.0)
    finally:
        uninstall_span_exporter("equivalence-bench")
        exporter.close()
    return rows, exporter.stats(), drained


def test_exported_equivalence_over_workload(benchmark, bench_registry,
                                            tmp_path_factory):
    """The exporter is an observer too: export-on == export-off, bit-identical.

    Every traced query ships its span tree through a real
    :class:`~repro.obs.export.SpanExporter` into an OTLP/JSON file sink
    while the scores are compared against an export-off run — and the sink
    must end up holding all 30 root spans, none dropped.
    """
    import json

    sink = str(tmp_path_factory.mktemp("otlp") / "spans.jsonl")
    rows, stats, drained = run_once(benchmark, _compare_exported,
                                    bench_registry, sink)
    print_table(rows, title="Export-off vs export-on over the 30-query workload")
    assert len(rows) == 30
    mismatched = [row["query"] for row in rows if not row["skyline_equal"]]
    assert not mismatched, f"queries where exported skylines diverge: {mismatched}"
    # Bit-identical is the bar: shipping spans must never perturb a float.
    drifted = [row["query"] for row in rows if row["max_score_delta"] != 0.0]
    assert not drifted, f"queries where exporting changed scores: {drifted}"
    # Nothing dropped, everything arrived: 30 "explain" roots in the sink.
    assert drained, f"exporter failed to drain: {stats}"
    assert stats["dropped"] == 0, stats
    assert stats["enqueued"] == stats["exported"] == 30, stats
    roots = 0
    with open(sink, encoding="utf-8") as handle:
        for line in handle:
            payload = json.loads(line)
            for entry in payload["resourceSpans"]:
                for scope in entry["scopeSpans"]:
                    roots += sum(1 for span in scope["spans"]
                                 if span["name"] == "explain")
    assert roots == 30, f"sink holds {roots} explain roots, want 30"
