"""Tables 2 & 3: run FEDEX over the full 30-query evaluation workload.

Prints, for every query of Appendix A, the most interesting column, its
interestingness score, the top explanation, and the generation time — the raw
material every other experiment builds on.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.core import FedexConfig, FedexExplainer
from repro.experiments import print_table
from repro.workloads import WORKLOAD


def _run_workload(registry):
    rows = []
    for query in WORKLOAD:
        step = query.build_step(registry)
        started = time.perf_counter()
        report = FedexExplainer(FedexConfig(sample_size=5_000, seed=0)).explain(step)
        elapsed = time.perf_counter() - started
        top_column = max(report.interestingness_scores, key=report.interestingness_scores.get) \
            if report.interestingness_scores else None
        top_explanation = report.explanations[0] if report.explanations else None
        rows.append({
            "query": query.number,
            "dataset": query.dataset,
            "kind": query.kind,
            "top_column": top_column,
            "interestingness": report.interestingness_scores.get(top_column, 0.0) if top_column else 0.0,
            "explained_by": top_explanation.row_set_label if top_explanation else "-",
            "explanations": len(report.explanations),
            "seconds": elapsed,
        })
    return rows


def test_tables_2_and_3_workload(benchmark, bench_registry):
    rows = run_once(benchmark, _run_workload, bench_registry)
    print_table(rows, title="Tables 2 & 3 — FEDEX over the 30-query workload (fedex-Sampling, 5K)")
    assert len(rows) == 30
    assert all(row["explanations"] >= 0 for row in rows)
    # Every filter/group-by query should produce at least one explanation.
    unexplained = [row["query"] for row in rows if row["kind"] != "join" and row["explanations"] == 0]
    assert not unexplained, f"queries without explanations: {unexplained}"
