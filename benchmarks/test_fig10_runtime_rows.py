"""Figure 10: runtime vs number of rows — exact FEDEX, fedex-Sampling, SeeDB, Rath.

Paper result (shape): fedex-Sampling's runtime grows slowly with the row
count and scales past the baselines on large data (62s vs 155s for SeeDB at
10M rows; Rath cannot run at that scale); exact FEDEX tracks fedex-Sampling
but is slower on large inputs because the interestingness phase sees all
rows.
"""

from __future__ import annotations

from conftest import bench_scale, run_once

from repro.baselines import RathInsights, SeeDB
from repro.baselines.fedex_adapter import fedex_system
from repro.experiments import average_by, print_table, row_scaling_sweep

_ROW_COUNTS = {
    "small": (2_000, 8_000, 20_000),
    "medium": (20_000, 60_000, 120_000),
    "full": (120_000, 1_000_000, 3_000_000, 10_000_000),
}
_QUERIES = (4, 6, 13, 16, 21)


def test_figure10_runtime_vs_rows(benchmark, registry_factory):
    row_counts = _ROW_COUNTS.get(bench_scale(), _ROW_COUNTS["small"])
    systems = [fedex_system(5_000, name="FEDEX-Sampling"), SeeDB(), RathInsights()]
    rows = run_once(benchmark, row_scaling_sweep, registry_factory,
                    row_counts=row_counts, query_numbers=_QUERIES, systems=systems,
                    include_exact_fedex=True, timeout_seconds=300.0)
    averaged = average_by(rows, ["rows", "system"])
    print_table(averaged, title="Figure 10 — runtime (s) vs number of rows (mean over queries)")

    by_system = {}
    for row in averaged:
        if row["seconds"] is not None:
            by_system.setdefault(row["system"], {})[row["rows"]] = row["seconds"]

    fedex_sampling = by_system.get("FEDEX-Sampling", {})
    assert fedex_sampling, "fedex-Sampling must produce timings"
    smallest, largest = min(fedex_sampling), max(fedex_sampling)
    # Sub-linear-ish growth: growing the data 10x should not grow runtime 50x.
    growth = fedex_sampling[largest] / max(fedex_sampling[smallest], 1e-9)
    size_ratio = largest / smallest
    assert growth < size_ratio * 5.0
    # Exact fedex is never faster than fedex-Sampling at the largest size by a
    # wide margin (the sampling optimization should pay off or at least not hurt).
    exact = by_system.get("FEDEX", {})
    if largest in exact:
        assert exact[largest] >= 0.5 * fedex_sampling[largest]
