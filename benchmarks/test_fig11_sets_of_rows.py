"""Figure 11: contribution score vs the number of sets-of-rows.

Paper result: there is no clear monotone trend — the optimal number of
sets-of-rows depends on the query and attribute — which motivates the
readability-driven choice of 5 or 10 sets.  The benchmark prints the series
for query 1 (Products & Sales) and query 7 (Spotify) and checks the values
are well-formed.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import print_table, sets_of_rows_sweep

_SET_COUNTS = (2, 3, 5, 8, 10, 15, 20)


def test_figure11_sets_of_rows(benchmark, bench_registry):
    rows = run_once(benchmark, sets_of_rows_sweep, bench_registry,
                    query_numbers=(1, 7), set_counts=_SET_COUNTS, sample_size=5_000, seed=0)
    print_table(rows, columns=["query", "dataset", "attribute", "sets_of_rows",
                               "best_contribution", "best_standardized_contribution"],
                title="Figure 11 — best contribution vs number of sets-of-rows")

    assert {row["query"] for row in rows} <= {1, 7}
    assert all(row["best_contribution"] >= 0.0 for row in rows)
    spotify_rows = [row for row in rows if row["query"] == 7]
    assert len({row["sets_of_rows"] for row in spotify_rows}) == len(_SET_COUNTS)
