"""Perf-regression gate over the persisted BENCH_*.json trajectories.

:mod:`perf_record` turns every bench run into an appended record; this
module turns the trajectory into a *gate*: the latest run of each area is
diffed against the trailing median of the prior runs recorded on a
comparable host, and any dimensionless ratio field (``speedup``,
``warm_speedup``, ``open_speedup``, ``throughput``...) that fell more than
20 % below its median fails the gate with a non-zero exit.

Design choices, all in service of a gate that cries wolf rarely enough to
stay enabled:

* **Only ratio fields are judged.**  Absolute latencies move with the
  machine, CI neighbours, and thermal luck; the speedup of the same two
  measurements on the same host is far steadier.  A field counts as a
  ratio when its key contains ``speedup`` or ``throughput``.
* **Only comparable runs form the baseline.**  Runs are bucketed by a host
  key — python ``major.minor``, interpreter implementation, machine
  architecture, GIL build flavour — and the latest run is judged against
  the median of *prior* runs in its own bucket.  Median, not mean: one
  historic outlier must not drag the baseline.
* **Waived subtrees are skipped.**  Benches annotate environment-impaired
  results with a ``waiver`` string (e.g. a process-pool comparison on a
  single-core host); a subtree whose ``waiver`` is non-None is invisible
  to the gate, in the latest run and in baselines alike.
* **Thin history passes.**  With fewer than ``min_runs`` prior comparable
  runs the field is reported as ``skipped`` rather than judged — a fresh
  host or a fresh ratio field must not fail CI for lacking a past.

Usage::

    python benchmarks/perf_gate.py                    # gate every area
    python benchmarks/perf_gate.py --areas backends   # one area
    python benchmarks/perf_gate.py --dir ci-artifacts --threshold 0.75

Exit status: 0 when nothing regressed (including "no history"), 1 when at
least one ratio field regressed past the threshold.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

if __package__:  # imported as benchmarks.perf_gate
    from .perf_record import load_area
else:  # executed as a script, or imported flat (pytest rootdir style)
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from perf_record import load_area  # type: ignore

#: Areas gated by default — the BENCH_*.json files the benches write.
AREAS = ("backends", "session", "service", "storage")

#: Latest/median below this ratio counts as a regression (0.8 = -20 %).
DEFAULT_THRESHOLD = 0.8

#: Minimum prior comparable runs before a field is judged at all.
DEFAULT_MIN_RUNS = 3

#: Substrings marking a payload key as a dimensionless ratio field.
RATIO_MARKERS = ("speedup", "throughput")


@dataclass
class Verdict:
    """The gate's judgement of one ratio field of one area."""

    area: str
    field: str
    status: str  # "ok" | "regressed" | "skipped"
    latest: Optional[float] = None
    baseline: Optional[float] = None
    detail: str = ""

    def render(self) -> str:
        if self.status == "skipped":
            return f"SKIP  {self.area}:{self.field}  {self.detail}"
        ratio = self.latest / self.baseline if self.baseline else float("inf")
        tag = "ok  " if self.status == "ok" else "FAIL"
        return (f"{tag}  {self.area}:{self.field}  latest={self.latest:.3f} "
                f"median={self.baseline:.3f} ratio={ratio:.2f}")


def host_key(run: Dict[str, object]) -> Tuple[str, str, str, bool]:
    """The comparability bucket of one run record.

    Python is keyed by ``major.minor``: patch releases share performance
    character, but 3.11 vs 3.12 (or a GIL-free build) do not.
    """
    host = run.get("host") or {}
    python = str(host.get("python", "?"))
    return (
        ".".join(python.split(".")[:2]),
        str(host.get("implementation", "?")),
        str(host.get("machine", "?")),
        bool(host.get("gil_disabled", False)),
    )


def ratio_fields(payload: object, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Every ``(dotted.path, value)`` ratio field of one run payload.

    Walks dictionaries and lists recursively; list elements are labelled by
    their ``step`` name when present (stable across runs, unlike indices).
    A dictionary carrying a non-None ``waiver`` is skipped whole — the
    bench itself declared the numbers unjudgeable on this host.
    """
    if isinstance(payload, dict):
        if payload.get("waiver") is not None:
            return
        for key, value in payload.items():
            if key in ("host", "recorded_at"):
                continue
            path = f"{prefix}{key}"
            if (isinstance(value, (int, float)) and not isinstance(value, bool)
                    and any(marker in key for marker in RATIO_MARKERS)):
                yield path, float(value)
            else:
                yield from ratio_fields(value, prefix=f"{path}.")
    elif isinstance(payload, list):
        for index, element in enumerate(payload):
            label = (element.get("step") if isinstance(element, dict)
                     and isinstance(element.get("step"), str) else str(index))
            yield from ratio_fields(element, prefix=f"{prefix}{label}.")


def gate_area(area: str, directory: Optional[Path] = None,
              threshold: float = DEFAULT_THRESHOLD,
              min_runs: int = DEFAULT_MIN_RUNS) -> List[Verdict]:
    """Judge the latest run of one area against its trailing medians."""
    path = (directory / f"BENCH_{area}.json") if directory is not None else None
    runs = load_area(area, path)["runs"]
    if not runs:
        return [Verdict(area, "*", "skipped", detail="no recorded runs")]
    latest = runs[-1]
    key = host_key(latest)
    history = [run for run in runs[:-1] if host_key(run) == key]

    verdicts: List[Verdict] = []
    for field, value in ratio_fields(latest):
        samples = [
            sample
            for run in history
            for path_, sample in ratio_fields(run)
            if path_ == field
        ]
        if len(samples) < min_runs:
            verdicts.append(Verdict(
                area, field, "skipped", latest=value,
                detail=f"{len(samples)} comparable prior run(s), need {min_runs}",
            ))
            continue
        baseline = statistics.median(samples)
        regressed = baseline > 0 and value < baseline * threshold
        verdicts.append(Verdict(
            area, field, "regressed" if regressed else "ok",
            latest=value, baseline=baseline,
        ))
    if not verdicts:
        verdicts.append(Verdict(area, "*", "skipped",
                                detail="latest run has no ratio fields"))
    return verdicts


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", type=Path, default=None,
                        help="directory holding BENCH_*.json (default: repo root)")
    parser.add_argument("--areas", default=",".join(AREAS),
                        help="comma-separated areas to gate")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="latest/median ratio below which a field fails")
    parser.add_argument("--min-runs", type=int, default=DEFAULT_MIN_RUNS,
                        help="prior comparable runs required to judge a field")
    options = parser.parse_args(argv)

    failures = 0
    for area in [name.strip() for name in options.areas.split(",") if name.strip()]:
        for verdict in gate_area(area, directory=options.dir,
                                 threshold=options.threshold,
                                 min_runs=options.min_runs):
            print(verdict.render())
            if verdict.status == "regressed":
                failures += 1
    if failures:
        print(f"\nperf gate FAILED: {failures} ratio field(s) regressed more "
              f"than {100 * (1 - options.threshold):.0f}% below the trailing median")
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
