"""Perf-regression gate over the persisted BENCH_*.json trajectories.

:mod:`perf_record` turns every bench run into an appended record; this
module turns the trajectory into a *gate*: the latest run of each area is
diffed against the trailing median of the prior runs recorded on a
comparable host, and any dimensionless ratio field (``speedup``,
``warm_speedup``, ``open_speedup``, ``throughput``...) that fell more than
20 % below its median fails the gate with a non-zero exit.

Design choices, all in service of a gate that cries wolf rarely enough to
stay enabled:

* **Only ratio fields are judged.**  Absolute latencies move with the
  machine, CI neighbours, and thermal luck; the speedup of the same two
  measurements on the same host is far steadier.  A field counts as a
  ratio when its key contains ``speedup`` or ``throughput``.
* **Only comparable runs form the baseline.**  Runs are bucketed by a host
  key — python ``major.minor``, interpreter implementation, machine
  architecture, GIL build flavour — and the latest run is judged against
  the *decay-weighted* median of *prior* runs in its own bucket.  Median,
  not mean: one historic outlier must not drag the baseline.  Weighted by
  recency (``decay ** age``, newest heaviest): the baseline tracks what the
  code does *now*, so a legitimate speedup eventually becomes the bar
  instead of being forgiven forever by ancient slow runs.
* **Known regressions are waived in place.**  ``--update-waiver`` annotates
  a subtree of the *latest* recorded run with a waiver reason (host-specific
  effects like a single-core process-pool comparison), using the exact file
  rewrite the benches use — the gate then skips it like any bench-declared
  waiver.
* **Waived subtrees are skipped.**  Benches annotate environment-impaired
  results with a ``waiver`` string (e.g. a process-pool comparison on a
  single-core host); a subtree whose ``waiver`` is non-None is invisible
  to the gate, in the latest run and in baselines alike.
* **Thin history passes.**  With fewer than ``min_runs`` prior comparable
  runs the field is reported as ``skipped`` rather than judged — a fresh
  host or a fresh ratio field must not fail CI for lacking a past.

Usage::

    python benchmarks/perf_gate.py                    # gate every area
    python benchmarks/perf_gate.py --areas backends   # one area
    python benchmarks/perf_gate.py --dir ci-artifacts --threshold 0.75

Exit status: 0 when nothing regressed (including "no history"), 1 when at
least one ratio field regressed past the threshold.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

if __package__:  # imported as benchmarks.perf_gate
    from .perf_record import bench_dir, load_area
else:  # executed as a script, or imported flat (pytest rootdir style)
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from perf_record import bench_dir, load_area  # type: ignore

#: Areas gated by default — the BENCH_*.json files the benches write.
AREAS = ("backends", "session", "service", "serving", "storage")

#: Latest/median below this ratio counts as a regression (0.8 = -20 %).
DEFAULT_THRESHOLD = 0.8

#: Minimum prior comparable runs before a field is judged at all.
DEFAULT_MIN_RUNS = 3

#: Per-run age decay of baseline sample weights (newest sample weight 1,
#: a sample ``k`` runs older weight ``decay ** k``).
DEFAULT_DECAY = 0.9

#: Substrings marking a payload key as a dimensionless ratio field.
RATIO_MARKERS = ("speedup", "throughput")


@dataclass
class Verdict:
    """The gate's judgement of one ratio field of one area."""

    area: str
    field: str
    status: str  # "ok" | "regressed" | "skipped"
    latest: Optional[float] = None
    baseline: Optional[float] = None
    detail: str = ""

    def render(self) -> str:
        if self.status == "skipped":
            return f"SKIP  {self.area}:{self.field}  {self.detail}"
        ratio = self.latest / self.baseline if self.baseline else float("inf")
        tag = "ok  " if self.status == "ok" else "FAIL"
        return (f"{tag}  {self.area}:{self.field}  latest={self.latest:.3f} "
                f"median={self.baseline:.3f} ratio={ratio:.2f}")


def host_key(run: Dict[str, object]) -> Tuple[str, str, str, bool]:
    """The comparability bucket of one run record.

    Python is keyed by ``major.minor``: patch releases share performance
    character, but 3.11 vs 3.12 (or a GIL-free build) do not.
    """
    host = run.get("host") or {}
    python = str(host.get("python", "?"))
    return (
        ".".join(python.split(".")[:2]),
        str(host.get("implementation", "?")),
        str(host.get("machine", "?")),
        bool(host.get("gil_disabled", False)),
    )


def ratio_fields(payload: object, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Every ``(dotted.path, value)`` ratio field of one run payload.

    Walks dictionaries and lists recursively; list elements are labelled by
    their ``step`` name when present (stable across runs, unlike indices).
    A dictionary carrying a non-None ``waiver`` is skipped whole — the
    bench itself declared the numbers unjudgeable on this host.
    """
    if isinstance(payload, dict):
        if payload.get("waiver") is not None:
            return
        for key, value in payload.items():
            if key in ("host", "recorded_at"):
                continue
            path = f"{prefix}{key}"
            if (isinstance(value, (int, float)) and not isinstance(value, bool)
                    and any(marker in key for marker in RATIO_MARKERS)):
                yield path, float(value)
            else:
                yield from ratio_fields(value, prefix=f"{path}.")
    elif isinstance(payload, list):
        for index, element in enumerate(payload):
            label = (element.get("step") if isinstance(element, dict)
                     and isinstance(element.get("step"), str) else str(index))
            yield from ratio_fields(element, prefix=f"{prefix}{label}.")


def decayed_median(samples: List[float], decay: float = DEFAULT_DECAY) -> float:
    """The recency-weighted median of samples ordered oldest → newest.

    Each sample weighs ``decay ** age`` (the newest weighs 1); the weighted
    median is the smallest value whose cumulative weight, walking samples
    sorted by value, reaches half the total.  ``decay=1`` degrades to the
    plain median's lower midpoint; small decays converge on "the most
    recent sample is the baseline".  Stays an observed value — never an
    interpolation — so one historic outlier still cannot invent a baseline
    nobody measured.
    """
    if not samples:
        raise statistics.StatisticsError("no samples")
    weighted = [(value, decay ** age)
                for age, value in enumerate(reversed(samples))]
    weighted.sort(key=lambda pair: pair[0])
    half = sum(weight for _, weight in weighted) / 2.0
    cumulative = 0.0
    for value, weight in weighted:
        cumulative += weight
        if cumulative >= half:
            return value
    return weighted[-1][0]


def update_waiver(area: str, field: str, reason: str,
                  directory: Optional[Path] = None) -> Path:
    """Annotate a subtree of the latest recorded run with a waiver reason.

    ``field`` is a dotted path into the run payload, with list elements
    addressed by their ``step`` label (exactly as :func:`ratio_fields`
    labels them) or by index; the subtree it names must be a dictionary,
    which gains ``"waiver": reason``.  The rewrite is atomic, via the same
    temp-file + rename the benches' recorder uses.
    """
    path = ((directory or bench_dir()) / f"BENCH_{area}.json")
    document = load_area(area, path)
    runs = document["runs"]
    if not runs:
        raise ValueError(f"{path} has no recorded runs to waive")
    node: object = runs[-1]
    for segment in field.split("."):
        if isinstance(node, dict):
            if segment not in node:
                raise ValueError(f"{field!r}: no key {segment!r} in the latest "
                                 f"{area} run")
            node = node[segment]
        elif isinstance(node, list):
            labelled = [element for element in node
                        if isinstance(element, dict)
                        and element.get("step") == segment]
            if labelled:
                node = labelled[0]
            else:
                try:
                    node = node[int(segment)]
                except (ValueError, IndexError):
                    raise ValueError(f"{field!r}: no list element {segment!r} "
                                     f"in the latest {area} run") from None
        else:
            raise ValueError(f"{field!r}: {segment!r} descends into a leaf")
    if not isinstance(node, dict):
        raise ValueError(f"{field!r} names a {type(node).__name__}, not a "
                         "dictionary subtree a waiver can annotate")
    node["waiver"] = reason
    handle = tempfile.NamedTemporaryFile(
        "w", dir=str(path.parent), prefix=path.name + ".", delete=False
    )
    try:
        with handle:
            json.dump(document, handle, indent=2, sort_keys=False)
            handle.write("\n")
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return path


def gate_area(area: str, directory: Optional[Path] = None,
              threshold: float = DEFAULT_THRESHOLD,
              min_runs: int = DEFAULT_MIN_RUNS,
              decay: float = DEFAULT_DECAY) -> List[Verdict]:
    """Judge the latest run of each area against its trailing decayed medians."""
    path = (directory / f"BENCH_{area}.json") if directory is not None else None
    runs = load_area(area, path)["runs"]
    if not runs:
        return [Verdict(area, "*", "skipped", detail="no recorded runs")]
    latest = runs[-1]
    key = host_key(latest)
    history = [run for run in runs[:-1] if host_key(run) == key]

    verdicts: List[Verdict] = []
    for field, value in ratio_fields(latest):
        samples = [
            sample
            for run in history
            for path_, sample in ratio_fields(run)
            if path_ == field
        ]
        if len(samples) < min_runs:
            verdicts.append(Verdict(
                area, field, "skipped", latest=value,
                detail=f"{len(samples)} comparable prior run(s), need {min_runs}",
            ))
            continue
        baseline = decayed_median(samples, decay)
        regressed = baseline > 0 and value < baseline * threshold
        verdicts.append(Verdict(
            area, field, "regressed" if regressed else "ok",
            latest=value, baseline=baseline,
        ))
    if not verdicts:
        verdicts.append(Verdict(area, "*", "skipped",
                                detail="latest run has no ratio fields"))
    return verdicts


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", type=Path, default=None,
                        help="directory holding BENCH_*.json (default: repo root)")
    parser.add_argument("--areas", default=",".join(AREAS),
                        help="comma-separated areas to gate")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="latest/median ratio below which a field fails")
    parser.add_argument("--min-runs", type=int, default=DEFAULT_MIN_RUNS,
                        help="prior comparable runs required to judge a field")
    parser.add_argument("--decay", type=float, default=DEFAULT_DECAY,
                        help="per-run age decay of baseline sample weights")
    parser.add_argument("--update-waiver", metavar="AREA", default=None,
                        help="instead of gating: annotate a subtree of AREA's "
                             "latest run with a waiver (requires --field and "
                             "--reason)")
    parser.add_argument("--field", default=None,
                        help="dotted path of the subtree to waive "
                             "(list elements by their 'step' label or index)")
    parser.add_argument("--reason", default=None,
                        help="why the numbers are unjudgeable on this host")
    options = parser.parse_args(argv)

    if options.update_waiver is not None:
        if not options.field or not options.reason:
            parser.error("--update-waiver requires --field and --reason")
        try:
            path = update_waiver(options.update_waiver, options.field,
                                 options.reason, directory=options.dir)
        except ValueError as error:
            print(f"waiver not applied: {error}")
            return 1
        print(f"waived {options.update_waiver}:{options.field} in {path}")
        return 0

    failures = 0
    for area in [name.strip() for name in options.areas.split(",") if name.strip()]:
        for verdict in gate_area(area, directory=options.dir,
                                 threshold=options.threshold,
                                 min_runs=options.min_runs,
                                 decay=options.decay):
            print(verdict.render())
            if verdict.status == "regressed":
                failures += 1
    if failures:
        print(f"\nperf gate FAILED: {failures} ratio field(s) regressed more "
              f"than {100 * (1 - options.threshold):.0f}% below the trailing median")
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
