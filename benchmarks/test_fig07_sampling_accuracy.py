"""Figure 7: accuracy of fedex-Sampling vs the sample size.

Paper result: precision@3 above 93% already at a 5K sample (rising to 99% at
50K), Kendall-tau distance dropping from ~75 at a 50-row sample to ~11 at
50K, and nDCG above 92% everywhere (99.8% at 5K).  The reproduced series
must show the same monotone improvement and the high-accuracy regime at 5K.
"""

from __future__ import annotations

from conftest import bench_scale, run_once

from repro.experiments import mean_rows, print_table, sampling_accuracy_sweep

_QUERIES = (4, 5, 6, 7, 8, 16, 19, 21, 23, 24)
_SAMPLE_SIZES = {
    "small": (50, 200, 1_000, 5_000),
    "medium": (50, 200, 1_000, 5_000, 10_000, 20_000),
    "full": (50, 200, 1_000, 5_000, 10_000, 20_000, 50_000),
}


def test_figure7_sampling_accuracy(benchmark, bench_registry):
    sample_sizes = _SAMPLE_SIZES.get(bench_scale(), _SAMPLE_SIZES["small"])
    rows = run_once(benchmark, sampling_accuracy_sweep, bench_registry,
                    query_numbers=_QUERIES, sample_sizes=sample_sizes, seed=0)
    means = mean_rows(rows, "sample_size")
    print_table(means, columns=["sample_size", "precision_at_k", "kendall_tau", "ndcg"],
                title="Figure 7 — fedex-Sampling accuracy vs sample size (mean over queries)")

    by_size = {row["sample_size"]: row for row in means}
    smallest, largest = min(by_size), max(by_size)
    # Larger samples are at least as accurate as the smallest sample.
    assert by_size[largest]["precision_at_k"] >= by_size[smallest]["precision_at_k"] - 1e-9
    assert by_size[largest]["kendall_tau"] <= by_size[smallest]["kendall_tau"] + 1e-9
    # The 5K operating point the paper selects is already highly accurate.
    operating_point = by_size.get(5_000, by_size[largest])
    assert operating_point["precision_at_k"] >= 0.85
    assert operating_point["ndcg"] >= 0.90
