"""CI smoke test of the observability endpoint under a real traced workload.

An :class:`~repro.service.ExplanationService` routing the 30-query workload
through the process backend (4 workers) while its scrape endpoint is live:
``/metrics`` and ``/healthz`` are polled *during* the run by a scraper
thread, and the final ``/metrics`` payload must survive the strict
Prometheus parser with the per-worker batch histograms present —
the cross-process aggregation visible exactly where a scraper would look.
"""

from __future__ import annotations

import json
import threading
import urllib.request

from conftest import run_once

from repro.core import FedexConfig
from repro.obs.metrics import validate_prometheus_text
from repro.service import ExplanationService, ServiceConfig
from repro.workloads import WORKLOAD

WORKERS = 4


def _get(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def _run_workload(registry, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    service = ExplanationService(
        config=FedexConfig(backend="process", workers=WORKERS,
                           spill_bytes=0, seed=0),
        service_config=ServiceConfig(workers=WORKERS),
    )
    server = service.attach_observability()
    stop = threading.Event()
    scrapes = {"metrics": 0, "healthz": 0}
    errors = []

    def scraper():
        while not stop.is_set():
            try:
                validate_prometheus_text(_get(server.url + "/metrics"))
                scrapes["metrics"] += 1
                health = json.loads(_get(server.url + "/healthz"))
                assert health["status"] == "ok", health
                scrapes["healthz"] += 1
            except Exception as error:  # noqa: BLE001 - surfaced via errors
                errors.append(error)
                return
            stop.wait(0.1)

    thread = threading.Thread(target=scraper, daemon=True)
    thread.start()
    try:
        for query in WORKLOAD:
            service.explain("bench", query.build_step(registry))
        final_metrics = _get(server.url + "/metrics")
        traces = json.loads(_get(server.url + "/traces?limit=30"))
    finally:
        stop.set()
        thread.join(10)
        service.close()
    return final_metrics, traces, scrapes, errors


def test_endpoint_survives_a_traced_workload(benchmark, bench_registry,
                                             monkeypatch):
    final_metrics, traces, scrapes, errors = run_once(
        benchmark, _run_workload, bench_registry, monkeypatch)

    # The scraper polled the live endpoint throughout, never tripping.
    assert errors == [], f"mid-run scrapes failed: {errors!r}"
    assert scrapes["metrics"] >= 1 and scrapes["healthz"] >= 1

    # The final payload is one valid Prometheus document carrying the
    # worker-shipped histograms the process backend aggregated.
    families = validate_prometheus_text(final_metrics)
    assert families["repro_service_requests_total"] == "counter"
    for family in ("repro_worker_pair_seconds", "repro_worker_batch_seconds",
                   "repro_process_batch_seconds"):
        assert families[family] == "histogram", sorted(families)
    # ... labeled per worker with a pid that is not this process.
    import os
    import re

    labels = set(re.findall(r'repro_worker_batch_seconds_count\{'
                            r'worker="(\d+)"\}', final_metrics))
    assert labels and str(os.getpid()) not in labels
    assert re.search(r'repro_worker_structure_events_total{[^}]*tier="local"',
                     final_metrics)

    # /traces kept the most recent requests, each with a real critical path.
    assert traces["count"] >= 1
    for document in traces["traces"]:
        assert document["root"] == "explain"
        path = [step["name"] for step in document["critical_path"]]
        assert path[0] == "explain" and len(path) >= 2
