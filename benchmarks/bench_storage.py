"""Storage-layer benchmark: cold CSV ingest vs warm columnar opens.

Runs the storage acceptance bars on a 100k-row synthetic Spotify table::

    PYTHONPATH=src python benchmarks/bench_storage.py

* **cold CSV** — ``read_csv`` of the exported CSV (the vectorised parser);
* **dataset write** — one-time ``store.put`` into the columnar format;
* **warm open** — ``DatasetStore.open`` from a *fresh* store instance: a
  manifest read plus read-only mmaps, no data touched;
* **warm mmap explain** — an :class:`ExplanationSession` re-explaining a
  group-by over the stored frame: the report memo must be answered from
  persisted fingerprints alone — **zero** full hashes of any stored
  (dataset-sized) column, versus the in-memory warm path which re-hashes
  every input column per request;
* **registry replay** — a second store-backed ``DatasetRegistry`` must
  serve the table from disk instead of regenerating it.

Acceptance bars: warm open ≥ 10x faster than the cold CSV load, and no
full-column re-hash on the warm mmap explain path.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time

import perf_record

from repro.core import FedexConfig
from repro.dataframe import write_csv, read_csv
from repro.dataframe.column import FINGERPRINT_STATS
from repro.datasets import DatasetRegistry, load_spotify
from repro.operators import ExploratoryStep, GroupBy
from repro.session import ExplanationSession
from repro.storage import DatasetStore

N_ROWS = 100_000
WARM_OPEN_BAR = 10.0


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def run(base_dir: str) -> dict:
    spotify = load_spotify(N_ROWS, seed=0)
    csv_path = f"{base_dir}/spotify.csv"
    write_csv(spotify, csv_path)

    _, csv_cold = _timed(lambda: read_csv(csv_path))

    store = DatasetStore(f"{base_dir}/store")
    _, put_s = _timed(lambda: store.put("spotify", spotify))
    # A fresh store instance: nothing cached in-process, the open cost is
    # manifest JSON + mmap setup.
    warm_frame, warm_open = _timed(lambda: DatasetStore(store.root).open("spotify"))
    open_speedup = csv_cold / max(warm_open, 1e-9)

    print(f"{N_ROWS:,}-row spotify ({spotify.num_columns} columns, "
          f"python {sys.version.split()[0]})")
    print(f"{'stage':24s} {'seconds':>9s}")
    for stage, seconds in (("cold read_csv", csv_cold), ("store.put (once)", put_s),
                           ("warm store.open", warm_open)):
        print(f"{stage:24s} {seconds:9.3f}")
    print(f"warm open speedup: {open_speedup:.1f}x (bar {WARM_OPEN_BAR:.0f}x)")

    # Warm mmap explain: persisted fingerprints only, zero full-column hashes.
    step = ExploratoryStep([warm_frame], GroupBy("decade", {"popularity": ["mean"]}))
    session = ExplanationSession(config=FedexConfig(seed=0))
    session.explain(step)
    FINGERPRINT_STATS.reset()
    _, warm_mmap_explain = _timed(lambda: session.explain(step))
    mmap_hashes = FINGERPRINT_STATS.as_dict()

    memory_step = ExploratoryStep([spotify], GroupBy("decade", {"popularity": ["mean"]}))
    memory_session = ExplanationSession(config=FedexConfig(seed=0))
    memory_session.explain(memory_step)
    FINGERPRINT_STATS.reset()
    _, warm_memory_explain = _timed(lambda: memory_session.explain(memory_step))
    memory_hashes = FINGERPRINT_STATS.as_dict()

    print(f"\nwarm re-explain (report-memo hit): "
          f"mmap {warm_mmap_explain * 1e3:.1f}ms vs in-memory "
          f"{warm_memory_explain * 1e3:.1f}ms")
    print(f"  mmap      fingerprints: {mmap_hashes}")
    print(f"  in-memory fingerprints: {memory_hashes}")
    rehash_free = (
        mmap_hashes["persisted_hits"] >= spotify.num_columns
        and mmap_hashes["full_hash_max_rows"] < N_ROWS
    )

    # Registry replay: the second registry must open, not regenerate.
    registry_store = DatasetStore(f"{base_dir}/registry")
    sizes = dict(spotify_rows=N_ROWS, bank_rows=2_000, sales_rows=4_000,
                 products_rows=500)
    first = DatasetRegistry(seed=0, store=registry_store, **sizes)
    _, generate_s = _timed(lambda: first.table("spotify"))
    second = DatasetRegistry(seed=0, store=DatasetStore(registry_store.root), **sizes)
    _, replay_s = _timed(lambda: second.table("spotify"))
    print(f"\nregistry spotify table: generate+persist {generate_s:.3f}s, "
          f"replay from store {replay_s:.3f}s "
          f"({generate_s / max(replay_s, 1e-9):.0f}x)")

    return {
        "csv_cold": csv_cold, "warm_open": warm_open, "open_speedup": open_speedup,
        "rehash_free": rehash_free, "mmap_hashes": mmap_hashes,
    }


def main() -> int:
    base_dir = tempfile.mkdtemp(prefix="repro-bench-storage-")
    try:
        results = run(base_dir)
    finally:
        shutil.rmtree(base_dir, ignore_errors=True)
    failed = False
    if results["open_speedup"] < WARM_OPEN_BAR:
        print(f"WARNING: warm-open speedup {results['open_speedup']:.1f}x is below "
              f"the {WARM_OPEN_BAR:.0f}x acceptance bar")
        failed = True
    if not results["rehash_free"]:
        print(f"WARNING: warm mmap explain re-hashed a stored column: "
              f"{results['mmap_hashes']}")
        failed = True
    status = 1 if failed else 0
    perf_record.record("storage", {**results, "n_rows": N_ROWS, "status": status})
    return status


if __name__ == "__main__":
    raise SystemExit(main())
