"""Ablation: skyline selection vs plain weighted top-k ranking.

DESIGN.md calls out the skyline operator as a design choice; this ablation
compares the explanations it selects with a plain weighted top-k over all
candidates, and reports how often the two agree on the top explanation and
how large each result set is.
"""

from __future__ import annotations

from conftest import run_once

from repro.core import FedexConfig, FedexExplainer
from repro.experiments import print_table
from repro.workloads import WORKLOAD

_QUERIES = (4, 6, 7, 11, 13, 16, 21, 23, 27, 28)


def _run_ablation(registry):
    rows = []
    for number in _QUERIES:
        query = next(q for q in WORKLOAD if q.number == number)
        step = query.build_step(registry)
        with_skyline = FedexExplainer(
            FedexConfig(sample_size=5_000, seed=0, use_skyline=True)
        ).explain(step)
        without_skyline = FedexExplainer(
            FedexConfig(sample_size=5_000, seed=0, use_skyline=False, top_k_explanations=3)
        ).explain(step)
        top_with = with_skyline.explanations[0] if with_skyline.explanations else None
        top_without = without_skyline.explanations[0] if without_skyline.explanations else None
        rows.append({
            "query": number,
            "skyline_size": len(with_skyline.explanations),
            "topk_size": len(without_skyline.explanations),
            "same_top_explanation": (
                top_with is not None and top_without is not None
                and top_with.attribute == top_without.attribute
                and top_with.row_set_label == top_without.row_set_label
            ),
        })
    return rows


def test_ablation_skyline_vs_weighted_topk(benchmark, bench_registry):
    rows = run_once(benchmark, _run_ablation, bench_registry)
    print_table(rows, title="Ablation — skyline vs weighted top-k selection")

    agreement = sum(1 for row in rows if row["same_top_explanation"]) / len(rows)
    print_table([{"top_explanation_agreement": agreement}])
    # The weighted score ranks the skyline itself, so the top explanation
    # should agree for the clear majority of queries.
    assert agreement >= 0.7
    # The skyline keeps the result set small (the paper reports <= 3).
    assert all(row["skyline_size"] <= 10 for row in rows)
