"""Session-layer benchmark: cold vs warm vs parallel over the workload.

Runs the 30-query evaluation workload three ways and prints the timings::

    PYTHONPATH=src python benchmarks/bench_session.py [n_rounds]

* **cold** — a fresh :class:`ExplanationSession`, every query explained for
  the first time (full Algorithm 1, plus fingerprinting overhead);
* **warm** — the *same* session re-explains the identical 30 queries; every
  request must hit the full-report memo;
* **parallel** — a fresh session configured with the ``"parallel"``
  contribution backend (2 workers).

Also reports the overlapping-steps scenario the session layer exists for
(one filter refined five times over the same dataframe, cold engine vs warm
session) and the session cache's hit counters.

Acceptance bar: the warm re-explain of an already-seen workload must be at
least **5x** faster than the cold pass (in practice it is orders of
magnitude faster — a dictionary lookup per query).
"""

from __future__ import annotations

import sys
import time

import perf_record

from repro.core import FedexConfig, FedexExplainer
from repro.dataframe import Comparison
from repro.datasets import DatasetRegistry, load_spotify
from repro.operators import ExploratoryStep, Filter
from repro.session import ExplanationSession
from repro.workloads import WORKLOAD

#: Dataset sizes mirroring the benchmark harness's "small" scale.
_SIZES = dict(spotify_rows=8_000, bank_rows=5_000, sales_rows=20_000, products_rows=1_500)

WARM_SPEEDUP_BAR = 5.0


def _run_workload(session: ExplanationSession, steps) -> float:
    start = time.perf_counter()
    for step in steps:
        session.explain(step)
    return time.perf_counter() - start


def run() -> dict:
    registry = DatasetRegistry(seed=0, **_SIZES)
    steps = [query.build_step(registry) for query in WORKLOAD]

    session = ExplanationSession(config=FedexConfig(seed=0))
    cold = _run_workload(session, steps)
    warm = _run_workload(session, steps)

    parallel_session = ExplanationSession(
        config=FedexConfig(seed=0, backend="parallel", workers=2)
    )
    parallel = _run_workload(parallel_session, steps)

    print(f"30-query workload, {_SIZES['spotify_rows']:,}-row spotify scale "
          f"(seconds, python {sys.version.split()[0]})")
    print(f"{'mode':10s} {'seconds':>9s} {'vs cold':>9s}")
    for mode, seconds in (("cold", cold), ("warm", warm), ("parallel", parallel)):
        print(f"{mode:10s} {seconds:9.3f} {cold / max(seconds, 1e-9):8.1f}x")
    print(f"cache stats: {session.stats.as_dict()}")

    # The refined-filter scenario: same input frame, five related predicates.
    spotify = load_spotify(_SIZES["spotify_rows"], seed=3)
    thresholds = (55, 60, 65, 70, 75)
    refine_steps = [
        ExploratoryStep([spotify], Filter(Comparison("popularity", ">", threshold)))
        for threshold in thresholds
    ]
    start = time.perf_counter()
    for step in refine_steps:
        FedexExplainer(FedexConfig(seed=0)).explain(step)
    stateless = time.perf_counter() - start
    refine_session = ExplanationSession(config=FedexConfig(seed=0))
    start = time.perf_counter()
    for step in refine_steps:
        refine_session.explain(step)
    stateful = time.perf_counter() - start
    print(f"\nrefined filter x{len(thresholds)} (distinct steps, shared input): "
          f"stateless {stateless:.3f}s, session {stateful:.3f}s "
          f"({stateless / max(stateful, 1e-9):.1f}x); "
          f"partition hits {refine_session.stats.partition_hits}")

    return {"cold": cold, "warm": warm, "parallel": parallel,
            "warm_speedup": cold / max(warm, 1e-9)}


def main() -> int:
    results = run()
    status = 0
    if results["warm_speedup"] < WARM_SPEEDUP_BAR:
        print(f"WARNING: warm-cache speedup {results['warm_speedup']:.1f}x is below the "
              f"{WARM_SPEEDUP_BAR:.0f}x acceptance bar")
        status = 1
    perf_record.record("session", {**results, "status": status})
    return status


if __name__ == "__main__":
    raise SystemExit(main())
