"""Micro-benchmark: exact vs incremental contribution backends.

Runs the contribution phase of representative steps with both backends and
prints the timings plus the speedup, so future PRs can track the gain::

    PYTHONPATH=src python benchmarks/bench_backends.py [n_rows]

The headline number is the contribution phase of a 10k-row group-by step,
where the incremental backend must be at least ~3x faster than the rerun
backend; filter/join/union steps are reported alongside.

A second section races the two pool backends — ``parallel`` (threads) vs
``process`` — on a *Python-heavy* shard mix: the exceptionality measure
over a group-by step has no incremental plan, so every shard re-runs the
aggregation per set-of-rows, which is exactly the byte-code-bound work the
GIL serializes across threads.  The bar: the process pool must be at least
1.5x faster than the thread pool at 4 workers.  The bar is waived (with an
explanation, not a silent pass) on hosts that cannot show the effect:
free-threaded (GIL-free) builds, where threads scale too, and machines with
fewer cores than workers.

A third section measures what shard batching buys on the *wide-grid* mix —
many small partitions, tiny per-shard compute, so per-pair IPC dominates:
the process backend with automatic batching must be at least 1.3x faster
than its own per-pair (``shard_batch=1``) dispatch, which is exactly how
the backend submitted before batching existed.

A fourth section races the adaptive scheduler — cost-model batch sizing
plus work-stealing — against fixed count-based batches on a *cost-skewed*
grid (``set_counts=(2, 20)``, every pair an exact-rerun fallback): the
adaptive run must be at least 1.3x faster at 4 workers with bit-identical
scores, and the pool-shared structure tier must show a replacement pool
loading published structures instead of rebuilding.

Every run's timings and ratios are appended to ``BENCH_backends.json``
through :mod:`perf_record`, so the trajectory is comparable across PRs.
"""

from __future__ import annotations

import os
import sys
import time

import perf_record

from repro.core import FedexConfig, FedexExplainer, shutdown_process_pools
from repro.core.backends.process import PROCESS_STATS
from repro.dataframe import Comparison
from repro.datasets import load_spotify
from repro.datasets.products import load_products_and_sales
from repro.operators import ExploratoryStep, Filter, GroupBy, Join, Union

#: Process-over-threads acceptance bar on the Python-heavy shard mix.
POOL_SPEEDUP_BAR = 1.5

#: Batched-over-unbatched acceptance bar on the wide-grid mix: automatic
#: shard batching vs this backend's own per-pair dispatch (the pre-batching
#: baseline).
BATCH_SPEEDUP_BAR = 1.3

#: Disabled-tracing overhead bar: the no-op instrumentation reachable from
#: one explain must cost under this fraction of the contribution phase.
TRACING_OVERHEAD_BAR = 0.02

#: Enabled-exporter overhead bar: shipping one finished trace costs the
#: explain path a single wait-free enqueue, which must stay under this
#: fraction of the contribution phase (conversion and delivery run on the
#: exporter's own thread).
EXPORT_OVERHEAD_BAR = 0.02

#: Adaptive-scheduling acceptance bar on the skewed grid: cost-model batch
#: sizing + work-stealing vs fixed count-based batches, at 4 workers.
SKEW_SPEEDUP_BAR = 1.3


def _steps(n_rows: int):
    spotify = load_spotify(n_rows, seed=3)
    products, sales = load_products_and_sales(
        n_sales=n_rows, n_products=max(n_rows // 10, 100), seed=29
    )
    yield "groupby", ExploratoryStep([spotify], GroupBy(
        "decade",
        {"loudness": ["mean"], "popularity": ["mean", "max", "min", "sum"]},
        include_count=True,
    ))
    yield "filter", ExploratoryStep([spotify], Filter(Comparison("popularity", ">", 65)))
    yield "join", ExploratoryStep([products, sales], Join("item"))
    yield "union", ExploratoryStep([
        spotify.filter(Comparison("year", "<", 1990)),
        spotify.filter(Comparison("year", ">=", 1990)),
    ], Union())


def run(n_rows: int = 10_000) -> list:
    print(f"contribution-phase timings on {n_rows:,}-row steps "
          f"(seconds, best-of-1, python {sys.version.split()[0]})")
    print(f"{'step':10s} {'exact':>10s} {'incremental':>12s} {'speedup':>9s}")
    results = []
    for name, step in _steps(n_rows):
        timings = {}
        for backend in ("exact", "incremental"):
            report = FedexExplainer(FedexConfig(backend=backend, seed=0)).explain(step)
            timings[backend] = report.timings["contribution"]
        speedup = timings["exact"] / max(timings["incremental"], 1e-9)
        results.append((name, timings["exact"], timings["incremental"], speedup))
        print(f"{name:10s} {timings['exact']:10.3f} {timings['incremental']:12.3f} "
              f"{speedup:8.1f}x")
    return results


def _pool_bar_waiver(workers: int) -> str | None:
    """Why the process-over-threads bar cannot be enforced here, or ``None``."""
    gil_enabled = getattr(sys, "_is_gil_enabled", lambda: True)()
    if not gil_enabled:
        return ("free-threaded (GIL-free) python build: threads scale across "
                "cores too, so the process advantage the bar measures does not exist")
    cores = os.cpu_count() or 1
    if cores < workers:
        return (f"host has {cores} CPU core(s) for {workers} workers: neither "
                "pool can fan out, the comparison measures only overhead")
    return None


def run_pool_comparison(n_rows: int = 20_000, workers: int = 4):
    """Threads vs processes on the Python-heavy shard mix; returns the speedup.

    The step is a group-by explained with the *exceptionality* measure: no
    incremental plan exists for that combination, so every shard of the
    partition × attribute grid re-runs the aggregation per set-of-rows —
    python-bytecode-heavy work that the thread pool serializes on the GIL
    and the process pool genuinely parallelises.  ``spill_bytes=0`` ships
    the input to the workers through the content-addressed spill store.
    """
    spotify = load_spotify(n_rows, seed=3)
    step = ExploratoryStep([spotify], GroupBy(
        "decade", {"popularity": ["mean"], "loudness": ["mean"]}, include_count=True,
    ))
    shared = dict(partition_source="all", set_counts=(5,), seed=0)
    configs = {
        "threads": FedexConfig(backend="parallel", workers=workers, **shared),
        "process": FedexConfig(backend="process", workers=workers, spill_bytes=0, **shared),
    }
    timings = {}
    for name, config in configs.items():
        # Warm-up run pays the one-time costs (worker start-up, spill,
        # thread-pool creation) outside the measured pass.
        FedexExplainer(config).explain(step, measure="exceptionality")
        report = FedexExplainer(config).explain(step, measure="exceptionality")
        timings[name] = report.timings["contribution"]
    speedup = timings["threads"] / max(timings["process"], 1e-9)
    print(f"\npool comparison on the python-heavy shard mix "
          f"({n_rows:,}-row group-by, exceptionality, {workers} workers)")
    print(f"{'pool':10s} {'contribution_s':>15s}")
    for name in ("threads", "process"):
        print(f"{name:10s} {timings[name]:15.3f}")
    print(f"process speedup over threads: {speedup:.2f}x")
    return {"workers": workers, "n_rows": n_rows,
            "threads_s": timings["threads"], "process_s": timings["process"],
            "speedup": speedup}


def run_batching_comparison(n_rows: int = 4_000, workers: int = 4):
    """Batched vs per-pair process dispatch on the wide-grid mix.

    The step is a filter explained with ``partition_source="all"`` — every
    input attribute partitioned by every method, so the contribution grid
    is wide and each shard (batched KS over a few thousand rows) is cheap.
    ``shard_batch=1`` reproduces the backend's pre-batching behaviour (one
    pickle/submit/result round-trip per pair, the PR-5 baseline);
    ``shard_batch=None`` is the automatic batching policy.  Both runs
    produce bit-identical reports; only the dispatch overhead differs.
    """
    spotify = load_spotify(n_rows, seed=3)
    step = ExploratoryStep([spotify], Filter(Comparison("popularity", ">", 65)))
    shared = dict(backend="process", workers=workers, spill_bytes=0,
                  partition_source="all", set_counts=(5, 10), seed=0)
    timings = {}
    dispatch = {}
    for name, shard_batch in (("unbatched", 1), ("batched", None)):
        config = FedexConfig(shard_batch=shard_batch, **shared)
        # Warm-up pays worker start-up and the spill outside the measurement.
        FedexExplainer(config).explain(step, measure="exceptionality")
        PROCESS_STATS.reset()
        report = FedexExplainer(config).explain(step, measure="exceptionality")
        timings[name] = report.timings["contribution"]
        dispatch[name] = {"shards": PROCESS_STATS.shards_submitted,
                          "batches": PROCESS_STATS.batches_submitted}
    speedup = timings["unbatched"] / max(timings["batched"], 1e-9)
    print(f"\nshard batching on the wide-grid mix ({n_rows:,}-row filter, "
          f"partition_source=all, {workers} workers, "
          f"{dispatch['batched']['shards']} grid pairs)")
    print(f"{'dispatch':10s} {'contribution_s':>15s} {'submits':>9s}")
    for name in ("unbatched", "batched"):
        print(f"{name:10s} {timings[name]:15.3f} {dispatch[name]['batches']:9d}")
    print(f"batched speedup over per-pair dispatch: {speedup:.2f}x")
    return {"workers": workers, "n_rows": n_rows,
            "grid_pairs": dispatch["batched"]["shards"],
            "unbatched_s": timings["unbatched"],
            "unbatched_submits": dispatch["unbatched"]["batches"],
            "batched_s": timings["batched"],
            "batched_submits": dispatch["batched"]["batches"],
            "speedup": speedup}


def _report_scores(report):
    return {candidate.key(): (candidate.contribution,
                              candidate.standardized_contribution)
            for candidate in report.all_candidates}


def run_skew_comparison(n_rows: int = 6_000, workers: int = 4):
    """Adaptive scheduling vs fixed batches on a cost-skewed grid.

    The step is a group-by explained with the exceptionality measure and
    ``set_counts=(2, 20)``: every pair is an exact-rerun fallback whose
    cost scales with its partition's set count, so the grid mixes 2-set
    and 20-set pairs — a ~10× per-pair spread the count-based batches
    cannot see.  ``fixed`` is the pre-scheduler behaviour (count-auto
    batches, no stealing); ``adaptive`` sizes batches by predicted cost
    and lets idle workers steal the stragglers' tails.  Both runs must
    produce bit-identical reports.

    A second pass exercises the pool-shared structure tier on the
    wide-grid filter mix: one explain publishes worker-built structures,
    the pool is then discarded (as a crash would), and the replacement
    pool's workers must *load* the published structures instead of
    rebuilding them.
    """
    spotify = load_spotify(n_rows, seed=3)
    step = ExploratoryStep([spotify], GroupBy(
        "decade", {"popularity": ["mean"], "loudness": ["mean"]}, include_count=True,
    ))
    shared = dict(backend="process", workers=workers, spill_bytes=0,
                  partition_source="all", set_counts=(2, 20), seed=0)
    configs = {
        "fixed": FedexConfig(adaptive_batch=False, steal=False, **shared),
        "adaptive": FedexConfig(adaptive_batch=True, steal=True, **shared),
    }
    timings, reports, dispatch = {}, {}, {}
    for name, config in configs.items():
        # Warm-up pays worker start-up and the spill outside the measurement.
        FedexExplainer(config).explain(step, measure="exceptionality")
        PROCESS_STATS.reset()
        report = FedexExplainer(config).explain(step, measure="exceptionality")
        timings[name] = report.timings["contribution"]
        reports[name] = report
        dispatch[name] = {"shards": PROCESS_STATS.shards_submitted,
                          "batches": PROCESS_STATS.batches_submitted,
                          "steals": PROCESS_STATS.steals,
                          "stolen_pairs": PROCESS_STATS.stolen_pairs}
    identical = (
        reports["fixed"].skyline_keys() == reports["adaptive"].skyline_keys()
        and _report_scores(reports["fixed"]) == _report_scores(reports["adaptive"])
    )
    speedup = timings["fixed"] / max(timings["adaptive"], 1e-9)
    print(f"\nadaptive scheduling on the skewed grid ({n_rows:,}-row group-by, "
          f"exceptionality, set_counts=(2, 20), {workers} workers, "
          f"{dispatch['adaptive']['shards']} grid pairs)")
    print(f"{'schedule':10s} {'contribution_s':>15s} {'steals':>7s}")
    for name in ("fixed", "adaptive"):
        print(f"{name:10s} {timings[name]:15.3f} {dispatch[name]['steals']:7d}")
    print(f"adaptive speedup over fixed batches: {speedup:.2f}x "
          f"(scores identical: {identical})")

    # Pool-shared structure tier: publish, discard the pool, reload.
    filter_step = ExploratoryStep([spotify],
                                  Filter(Comparison("popularity", ">", 65)))
    tier_config = FedexConfig(shared_structures=True, **shared)
    PROCESS_STATS.reset()
    FedexExplainer(tier_config).explain(filter_step, measure="exceptionality")
    stores = PROCESS_STATS.shared_structure_stores
    first_hits = PROCESS_STATS.shared_structure_hits
    shutdown_process_pools()  # the replacement pool starts with empty caches
    PROCESS_STATS.reset()
    FedexExplainer(tier_config).explain(filter_step, measure="exceptionality")
    reload_hits = PROCESS_STATS.shared_structure_hits
    print(f"shared structure tier: {stores} published, {first_hits} cross-worker "
          f"hit(s) first pool, {reload_hits} hit(s) in the replacement pool")

    return {"workers": workers, "n_rows": n_rows,
            "grid_pairs": dispatch["adaptive"]["shards"],
            "fixed_s": timings["fixed"],
            "fixed_batches": dispatch["fixed"]["batches"],
            "adaptive_s": timings["adaptive"],
            "adaptive_batches": dispatch["adaptive"]["batches"],
            "steals": dispatch["adaptive"]["steals"],
            "stolen_pairs": dispatch["adaptive"]["stolen_pairs"],
            "scores_identical": identical,
            "shared_structures": {"stores": stores,
                                  "cross_worker_hits": first_hits,
                                  "replacement_pool_hits": reload_hits},
            "speedup": speedup}


def run_tracing_overhead(n_rows: int = 10_000):
    """Bound what *disabled* tracing costs the contribution phase.

    Run-to-run noise on one explain dwarfs a sub-2% effect, so the bound is
    built deterministically instead of differenced: one traced explain
    counts how many span and event call sites a request actually reaches,
    a tight microbenchmark prices the disabled-path primitives (one
    context-var read plus a no-op span or an ``enabled`` check), and the
    product is compared against the untraced contribution time.  The
    microbenchmark overstates the real cost — the hot call sites check
    ``tracer.enabled`` once and skip the span machinery entirely — so a
    pass here is conservative.
    """
    from repro.obs.trace import current_tracer, tracing

    spotify = load_spotify(n_rows, seed=3)
    step = ExploratoryStep([spotify], Filter(Comparison("popularity", ">", 65)))
    config = FedexConfig(seed=0)
    with tracing(False):
        FedexExplainer(config).explain(step)  # warm-up
        untraced = FedexExplainer(config).explain(step)
    untraced_s = untraced.timings["contribution"]
    with tracing(True):
        traced = FedexExplainer(config).explain(step)
    spans = [span for span in traced.trace.spans if not span.is_event]
    events = sum(span.attrs["count"] for span in traced.trace.spans
                 if span.is_event)

    iterations = 100_000
    start = time.perf_counter()
    for _ in range(iterations):
        with current_tracer().span("probe"):
            pass
    span_cost = (time.perf_counter() - start) / iterations
    start = time.perf_counter()
    for _ in range(iterations):
        tracer = current_tracer()
        if tracer.enabled:
            tracer.event("probe")
    event_cost = (time.perf_counter() - start) / iterations

    overhead_s = len(spans) * span_cost + events * event_cost
    fraction = overhead_s / max(untraced_s, 1e-9)
    print(f"\ndisabled-tracing overhead bound ({n_rows:,}-row filter)")
    print(f"call sites reached: {len(spans)} spans, {events} event occurrences")
    print(f"no-op costs: span {span_cost * 1e9:.0f}ns, check {event_cost * 1e9:.0f}ns")
    print(f"bound: {overhead_s * 1e6:.1f}us over a {untraced_s * 1e3:.1f}ms "
          f"contribution phase = {fraction * 100:.3f}%")

    # Exporter-enabled bound, built the same deterministic way: with a span
    # exporter installed the explain path pays exactly one wait-free
    # ``submit`` per finished trace (OTLP conversion and sink delivery run
    # on the exporter's worker thread), so the bound is the priced enqueue
    # against the same untraced contribution time.  The microbenchmark
    # reuses this run's real span tree so queue items are true-to-size.
    from repro.obs.export import SpanExporter

    export_iters = 20_000
    exporter = SpanExporter(lambda payload: None, queue_max=export_iters + 1,
                            batch_max=512, flush_interval_s=0.01)
    try:
        start = time.perf_counter()
        for _ in range(export_iters):
            exporter.export(traced.trace)
        submit_cost = (time.perf_counter() - start) / export_iters
        exporter.flush(30.0)
        dropped = exporter.stats()["dropped"]
    finally:
        exporter.close()
    export_fraction = submit_cost / max(untraced_s, 1e-9)
    export_headroom = EXPORT_OVERHEAD_BAR / max(export_fraction, 1e-12)
    print(f"exporter-enabled overhead bound: submit {submit_cost * 1e9:.0f}ns "
          f"per request = {export_fraction * 100:.4f}% of the contribution "
          f"phase ({export_headroom:.0f}x headroom under the "
          f"{EXPORT_OVERHEAD_BAR * 100:.0f}% bar, {dropped} dropped)")

    return {"n_rows": n_rows, "span_sites": len(spans), "event_occurrences": events,
            "noop_span_s": span_cost, "noop_check_s": event_cost,
            "untraced_contribution_s": untraced_s,
            "overhead_fraction": fraction,
            "export_submit_s": submit_cost,
            "export_overhead_fraction": export_fraction,
            "export_headroom_speedup": export_headroom}


def main() -> int:
    if len(sys.argv) > 1:
        try:
            n_rows = int(sys.argv[1])
        except ValueError:
            print(f"usage: bench_backends.py [n_rows]; got {sys.argv[1]!r}")
            return 2
    else:
        n_rows = 10_000
    results = run(n_rows)
    status = 0
    groupby_speedup = next(speedup for name, _, _, speedup in results if name == "groupby")
    if groupby_speedup < 3.0:
        print(f"WARNING: group-by contribution speedup {groupby_speedup:.1f}x is below the "
              f"3x acceptance bar")
        status = 1
    pool_workers = int(os.environ.get("REPRO_WORKERS", "4"))
    pool = run_pool_comparison(workers=pool_workers)
    waiver = _pool_bar_waiver(pool_workers)
    pool["waiver"] = waiver
    if waiver is not None:
        print(f"WAIVED: process-over-threads bar not enforced — {waiver}")
    elif pool["speedup"] < POOL_SPEEDUP_BAR:
        print(f"WARNING: process pool speedup {pool['speedup']:.2f}x is below the "
              f"{POOL_SPEEDUP_BAR}x bar over threads")
        status = 1
    batching = run_batching_comparison(workers=pool_workers)
    batching["waiver"] = waiver
    if waiver is not None:
        print(f"WAIVED: batching bar not enforced — {waiver}")
    elif batching["speedup"] < BATCH_SPEEDUP_BAR:
        print(f"WARNING: batched dispatch speedup {batching['speedup']:.2f}x is "
              f"below the {BATCH_SPEEDUP_BAR}x bar over per-pair dispatch")
        status = 1
    skew = run_skew_comparison(workers=pool_workers)
    skew["waiver"] = waiver
    if not skew["scores_identical"]:
        print("WARNING: adaptive scheduling changed scores — determinism bug")
        status = 1
    if waiver is not None:
        print(f"WAIVED: adaptive-scheduling bar not enforced — {waiver}")
    elif skew["speedup"] < SKEW_SPEEDUP_BAR:
        print(f"WARNING: adaptive scheduling speedup {skew['speedup']:.2f}x is "
              f"below the {SKEW_SPEEDUP_BAR}x bar over fixed batches")
        status = 1
    overhead = run_tracing_overhead(n_rows)
    if overhead["overhead_fraction"] >= TRACING_OVERHEAD_BAR:
        print(f"WARNING: disabled-tracing overhead bound "
              f"{overhead['overhead_fraction'] * 100:.2f}% is at or above the "
              f"{TRACING_OVERHEAD_BAR * 100:.0f}% bar")
        status = 1
    if overhead["export_overhead_fraction"] >= EXPORT_OVERHEAD_BAR:
        print(f"WARNING: exporter-enabled overhead bound "
              f"{overhead['export_overhead_fraction'] * 100:.2f}% is at or "
              f"above the {EXPORT_OVERHEAD_BAR * 100:.0f}% bar")
        status = 1
    shutdown_process_pools()
    perf_record.record("backends", {
        "n_rows": n_rows,
        "serial": [
            {"step": name, "exact_s": exact, "incremental_s": incremental,
             "speedup": speedup}
            for name, exact, incremental, speedup in results
        ],
        "pool": pool,
        "shard_batching": batching,
        "skew": skew,
        "tracing_overhead": overhead,
        "status": status,
    })
    return status


if __name__ == "__main__":
    raise SystemExit(main())
