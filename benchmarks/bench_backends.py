"""Micro-benchmark: exact vs incremental contribution backends.

Runs the contribution phase of representative steps with both backends and
prints the timings plus the speedup, so future PRs can track the gain::

    PYTHONPATH=src python benchmarks/bench_backends.py [n_rows]

The headline number is the contribution phase of a 10k-row group-by step,
where the incremental backend must be at least ~3x faster than the rerun
backend; filter/join/union steps are reported alongside.
"""

from __future__ import annotations

import sys

from repro.core import FedexConfig, FedexExplainer
from repro.dataframe import Comparison
from repro.datasets import load_spotify
from repro.datasets.products import load_products_and_sales
from repro.operators import ExploratoryStep, Filter, GroupBy, Join, Union


def _steps(n_rows: int):
    spotify = load_spotify(n_rows, seed=3)
    products, sales = load_products_and_sales(
        n_sales=n_rows, n_products=max(n_rows // 10, 100), seed=29
    )
    yield "groupby", ExploratoryStep([spotify], GroupBy(
        "decade",
        {"loudness": ["mean"], "popularity": ["mean", "max", "min", "sum"]},
        include_count=True,
    ))
    yield "filter", ExploratoryStep([spotify], Filter(Comparison("popularity", ">", 65)))
    yield "join", ExploratoryStep([products, sales], Join("item"))
    yield "union", ExploratoryStep([
        spotify.filter(Comparison("year", "<", 1990)),
        spotify.filter(Comparison("year", ">=", 1990)),
    ], Union())


def run(n_rows: int = 10_000) -> list:
    print(f"contribution-phase timings on {n_rows:,}-row steps "
          f"(seconds, best-of-1, python {sys.version.split()[0]})")
    print(f"{'step':10s} {'exact':>10s} {'incremental':>12s} {'speedup':>9s}")
    results = []
    for name, step in _steps(n_rows):
        timings = {}
        for backend in ("exact", "incremental"):
            report = FedexExplainer(FedexConfig(backend=backend, seed=0)).explain(step)
            timings[backend] = report.timings["contribution"]
        speedup = timings["exact"] / max(timings["incremental"], 1e-9)
        results.append((name, timings["exact"], timings["incremental"], speedup))
        print(f"{name:10s} {timings['exact']:10.3f} {timings['incremental']:12.3f} "
              f"{speedup:8.1f}x")
    return results


def main() -> int:
    if len(sys.argv) > 1:
        try:
            n_rows = int(sys.argv[1])
        except ValueError:
            print(f"usage: bench_backends.py [n_rows]; got {sys.argv[1]!r}")
            return 2
    else:
        n_rows = 10_000
    results = run(n_rows)
    groupby_speedup = next(speedup for name, _, _, speedup in results if name == "groupby")
    if groupby_speedup < 3.0:
        print(f"WARNING: group-by contribution speedup {groupby_speedup:.1f}x is below the "
              f"3x acceptance bar")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
