"""Micro-benchmark: exact vs incremental contribution backends.

Runs the contribution phase of representative steps with both backends and
prints the timings plus the speedup, so future PRs can track the gain::

    PYTHONPATH=src python benchmarks/bench_backends.py [n_rows]

The headline number is the contribution phase of a 10k-row group-by step,
where the incremental backend must be at least ~3x faster than the rerun
backend; filter/join/union steps are reported alongside.

A second section races the two pool backends — ``parallel`` (threads) vs
``process`` — on a *Python-heavy* shard mix: the exceptionality measure
over a group-by step has no incremental plan, so every shard re-runs the
aggregation per set-of-rows, which is exactly the byte-code-bound work the
GIL serializes across threads.  The bar: the process pool must be at least
1.5x faster than the thread pool at 4 workers.  The bar is waived (with an
explanation, not a silent pass) on hosts that cannot show the effect:
free-threaded (GIL-free) builds, where threads scale too, and machines with
fewer cores than workers.
"""

from __future__ import annotations

import os
import sys

from repro.core import FedexConfig, FedexExplainer, shutdown_process_pools
from repro.dataframe import Comparison
from repro.datasets import load_spotify
from repro.datasets.products import load_products_and_sales
from repro.operators import ExploratoryStep, Filter, GroupBy, Join, Union

#: Process-over-threads acceptance bar on the Python-heavy shard mix.
POOL_SPEEDUP_BAR = 1.5


def _steps(n_rows: int):
    spotify = load_spotify(n_rows, seed=3)
    products, sales = load_products_and_sales(
        n_sales=n_rows, n_products=max(n_rows // 10, 100), seed=29
    )
    yield "groupby", ExploratoryStep([spotify], GroupBy(
        "decade",
        {"loudness": ["mean"], "popularity": ["mean", "max", "min", "sum"]},
        include_count=True,
    ))
    yield "filter", ExploratoryStep([spotify], Filter(Comparison("popularity", ">", 65)))
    yield "join", ExploratoryStep([products, sales], Join("item"))
    yield "union", ExploratoryStep([
        spotify.filter(Comparison("year", "<", 1990)),
        spotify.filter(Comparison("year", ">=", 1990)),
    ], Union())


def run(n_rows: int = 10_000) -> list:
    print(f"contribution-phase timings on {n_rows:,}-row steps "
          f"(seconds, best-of-1, python {sys.version.split()[0]})")
    print(f"{'step':10s} {'exact':>10s} {'incremental':>12s} {'speedup':>9s}")
    results = []
    for name, step in _steps(n_rows):
        timings = {}
        for backend in ("exact", "incremental"):
            report = FedexExplainer(FedexConfig(backend=backend, seed=0)).explain(step)
            timings[backend] = report.timings["contribution"]
        speedup = timings["exact"] / max(timings["incremental"], 1e-9)
        results.append((name, timings["exact"], timings["incremental"], speedup))
        print(f"{name:10s} {timings['exact']:10.3f} {timings['incremental']:12.3f} "
              f"{speedup:8.1f}x")
    return results


def _pool_bar_waiver(workers: int) -> str | None:
    """Why the process-over-threads bar cannot be enforced here, or ``None``."""
    gil_enabled = getattr(sys, "_is_gil_enabled", lambda: True)()
    if not gil_enabled:
        return ("free-threaded (GIL-free) python build: threads scale across "
                "cores too, so the process advantage the bar measures does not exist")
    cores = os.cpu_count() or 1
    if cores < workers:
        return (f"host has {cores} CPU core(s) for {workers} workers: neither "
                "pool can fan out, the comparison measures only overhead")
    return None


def run_pool_comparison(n_rows: int = 20_000, workers: int = 4):
    """Threads vs processes on the Python-heavy shard mix; returns the speedup.

    The step is a group-by explained with the *exceptionality* measure: no
    incremental plan exists for that combination, so every shard of the
    partition × attribute grid re-runs the aggregation per set-of-rows —
    python-bytecode-heavy work that the thread pool serializes on the GIL
    and the process pool genuinely parallelises.  ``spill_bytes=0`` ships
    the input to the workers through the content-addressed spill store.
    """
    spotify = load_spotify(n_rows, seed=3)
    step = ExploratoryStep([spotify], GroupBy(
        "decade", {"popularity": ["mean"], "loudness": ["mean"]}, include_count=True,
    ))
    shared = dict(partition_source="all", set_counts=(5,), seed=0)
    configs = {
        "threads": FedexConfig(backend="parallel", workers=workers, **shared),
        "process": FedexConfig(backend="process", workers=workers, spill_bytes=0, **shared),
    }
    timings = {}
    for name, config in configs.items():
        # Warm-up run pays the one-time costs (worker start-up, spill,
        # thread-pool creation) outside the measured pass.
        FedexExplainer(config).explain(step, measure="exceptionality")
        report = FedexExplainer(config).explain(step, measure="exceptionality")
        timings[name] = report.timings["contribution"]
    speedup = timings["threads"] / max(timings["process"], 1e-9)
    print(f"\npool comparison on the python-heavy shard mix "
          f"({n_rows:,}-row group-by, exceptionality, {workers} workers)")
    print(f"{'pool':10s} {'contribution_s':>15s}")
    for name in ("threads", "process"):
        print(f"{name:10s} {timings[name]:15.3f}")
    print(f"process speedup over threads: {speedup:.2f}x")
    return speedup


def main() -> int:
    if len(sys.argv) > 1:
        try:
            n_rows = int(sys.argv[1])
        except ValueError:
            print(f"usage: bench_backends.py [n_rows]; got {sys.argv[1]!r}")
            return 2
    else:
        n_rows = 10_000
    results = run(n_rows)
    status = 0
    groupby_speedup = next(speedup for name, _, _, speedup in results if name == "groupby")
    if groupby_speedup < 3.0:
        print(f"WARNING: group-by contribution speedup {groupby_speedup:.1f}x is below the "
              f"3x acceptance bar")
        status = 1
    pool_workers = int(os.environ.get("REPRO_WORKERS", "4"))
    pool_speedup = run_pool_comparison(workers=pool_workers)
    waiver = _pool_bar_waiver(pool_workers)
    if waiver is not None:
        print(f"WAIVED: process-over-threads bar not enforced — {waiver}")
    elif pool_speedup < POOL_SPEEDUP_BAR:
        print(f"WARNING: process pool speedup {pool_speedup:.2f}x is below the "
              f"{POOL_SPEEDUP_BAR}x bar over threads")
        status = 1
    shutdown_process_pools()
    return status


if __name__ == "__main__":
    raise SystemExit(main())
