"""Serving benchmark: HTTP front end, streamed identity, replica scaling.

Drives the asyncio HTTP front end the way a load balancer would and prints
latency/throughput numbers::

    PYTHONPATH=src python benchmarks/bench_serving.py

Three phases, mirroring the acceptance bars:

* **streamed identity** — every one of the 30 workload queries is run
  through ``POST /explain/stream``; the final NDJSON ``report`` chunk must
  serialise to exactly the bytes ``ExplanationService.explain`` produces
  for the same request (zero tolerance, all 30 queries).
* **single replica load** — a load generator (client *processes*, so the
  generator's own GIL never caps the measurement) replays a query mix
  from hundreds of distinct tenant tokens over keep-alive connections
  against one replica; p50/p99 latency and requests-per-second recorded.
  Every request carries a distinct ``sample_size`` override, so each one
  is a genuine explanation compute in the replica process — the load is
  replica-CPU-bound, which is the regime replica scaling exists for —
  rather than a memo hit that only measures serialisation.
* **two replicas** — the same load against two replica processes sharing
  one dataset store and one shared cache tier.  Two processes mean two
  GILs: aggregate RPS must be at least **1.8x** the single-replica run.

The scaling bar is a statement about *capacity*, so it needs cores to
add: on hosts without enough CPUs for two replicas plus the client fleet
the numbers are still recorded but annotated with a ``waiver`` (the same
protocol ``bench_backends`` uses for its process-pool bars), which both
``main`` and the perf gate honour instead of failing.

Results land in ``BENCH_serving.json`` via ``perf_record`` so the perf
gate tracks ``replica_speedup`` across runs.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import os
import sys
import tempfile
import time
from pathlib import Path

import perf_record

from repro.core import FedexConfig
from repro.datasets import DatasetRegistry
from repro.serving import (
    ExplanationServer,
    ReplicaFleet,
    dump_json,
    parse_explain_request,
    report_document,
)
from repro.service import ExplanationService, ServiceConfig
from repro.storage import DatasetStore
from repro.workloads import WORKLOAD

#: Dataset sizes mirroring the benchmark harness's "small" scale.
_SIZES = dict(spotify_rows=8_000, bank_rows=5_000, sales_rows=20_000,
              products_rows=1_500)

REPLICA_SPEEDUP_BAR = 1.8

#: The load shape: hundreds of tenants, a handful of concurrent clients.
N_TENANTS = 240
N_CLIENTS = 8
REQUESTS_PER_CLIENT = 60

#: Query mix of the load phase (all against the spotify table).
_LOAD_THRESHOLDS = (55, 58, 60, 62, 65, 68, 70, 72, 75, 78)


# --------------------------------------------------------------- identity
def _registry_store(root: Path) -> DatasetStore:
    """Persist every table the workload references into one DatasetStore."""
    registry = DatasetRegistry(seed=0, **_SIZES)
    store = DatasetStore(root)
    for name in registry.table_names():
        store.put(name, registry.table(name))
    return store


def streamed_identity(store: DatasetStore) -> int:
    """Stream all 30 workload queries; count bit-identical final reports."""
    service = ExplanationService(config=FedexConfig(seed=0),
                                 service_config=ServiceConfig(workers=4),
                                 dataset_store=store)
    server = ExplanationServer(service).start()
    identical = 0
    try:
        for query in WORKLOAD:
            # Q18's paper-verbatim text names a column that does not exist
            # in the join view; apply the same mapping its builder documents
            # (see repro.workloads.queries).
            sql = query.sql.replace("products_sales_pack", "products_pack")
            body = json.dumps({"query": sql,
                               "measure": query.measure}).encode()
            connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                                    timeout=300)
            connection.request("POST", "/explain/stream", body=body)
            events = [json.loads(line) for line in
                      connection.getresponse().read().decode().strip().split("\n")]
            connection.close()
            assert events[-1]["event"] == "report", \
                f"Q{query.number}: stream ended with {events[-1]['event']}"
            streamed = dump_json(events[-1]["report"])

            def resolve(name):  # case-insensitive, like the server's default
                try:
                    return store.open(name)
                except Exception:
                    return store.open(name.lower())

            request = parse_explain_request(body, resolve, service.config)
            report = service.explain(f"ref-{query.number}", request.step,
                                     measure=request.measure)
            expected = dump_json(report_document(report))
            assert streamed == expected, \
                f"Q{query.number}: streamed bytes differ from explain()"
            identical += 1
    finally:
        server.close()
        service.close()
    return identical


# ------------------------------------------------------------- load phase
def _request_body(index: int, i: int) -> bytes:
    """The ``(client, request)`` pair's unique explain document.

    The ``sample_size`` override is distinct for every request of the run
    (37 is coprime to the 4000-wide range, so the walk never collides),
    which makes every request a fresh memo key: the replica performs the
    full explanation pipeline per request instead of serving a warm hit.
    """
    threshold = _LOAD_THRESHOLDS[(index + i) % len(_LOAD_THRESHOLDS)]
    serial = index * REQUESTS_PER_CLIENT + i
    return json.dumps({
        "query": f"SELECT * FROM spotify WHERE popularity > {threshold}",
        "config": {"sample_size": 2_000 + (serial * 37) % 4_000},
    }).encode()


def _warmup_bodies() -> list:
    return [json.dumps({"query": f"SELECT * FROM spotify "
                                 f"WHERE popularity > {threshold}"}).encode()
            for threshold in _LOAD_THRESHOLDS[:3]]


def _replica_bar_waiver() -> str | None:
    """Why the replica-scaling bar cannot be enforced here, or ``None``."""
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        cores = os.cpu_count() or 1
    if cores < 3:
        return (f"host has {cores} CPU core(s): two replica processes plus "
                "the client fleet cannot occupy distinct cores, so the "
                "comparison measures dispatch overhead, not added capacity")
    return None


def _client_main(index: int, addresses, tokens, results) -> None:
    """One load-generating client process: keep-alive, round-robin."""
    connections = [http.client.HTTPConnection(host, port, timeout=300)
                   for host, port in addresses]
    latencies = []
    try:
        for i in range(REQUESTS_PER_CLIENT):
            connection = connections[i % len(connections)]
            token = tokens[(index * REQUESTS_PER_CLIENT + i) % len(tokens)]
            body = _request_body(index, i)
            start = time.perf_counter()
            connection.request("POST", "/explain", body=body,
                               headers={"Authorization": f"Bearer {token}"})
            response = connection.getresponse()
            payload = response.read()
            latencies.append(time.perf_counter() - start)
            assert response.status == 200, \
                f"client {index}: HTTP {response.status}: {payload[:200]}"
        results.put(latencies)
    except Exception as error:  # surfaced by the parent as a failed run
        results.put(error)
    finally:
        for connection in connections:
            connection.close()


def _quantile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    position = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[position]


def run_load(urls, tokens) -> dict:
    """Hammer the replicas from N_CLIENTS processes; aggregate the numbers."""
    addresses = [(url.split("//")[1].split(":")[0],
                  int(url.rsplit(":", 1)[1])) for url in urls]
    # Warm every replica first: the first requests of a fresh process pay
    # for lazy imports and pool spin-up, which is start-up cost, not
    # serving capacity.
    for host, port in addresses:
        connection = http.client.HTTPConnection(host, port, timeout=300)
        for body in _warmup_bodies():
            connection.request("POST", "/explain", body=body,
                               headers={"Authorization": f"Bearer {tokens[0]}"})
            assert connection.getresponse().read()
        connection.close()

    context = multiprocessing.get_context()
    results = context.Queue()
    clients = [context.Process(target=_client_main,
                               args=(index, addresses, tokens, results))
               for index in range(N_CLIENTS)]
    start = time.perf_counter()
    for client in clients:
        client.start()
    latencies = []
    for _ in clients:
        outcome = results.get(timeout=600)
        if isinstance(outcome, Exception):
            raise outcome
        latencies.extend(outcome)
    elapsed = time.perf_counter() - start
    for client in clients:
        client.join(timeout=30)

    latencies.sort()
    total = N_CLIENTS * REQUESTS_PER_CLIENT
    return {
        "rps": total / max(elapsed, 1e-9),
        "p50_ms": _quantile(latencies, 0.50) * 1e3,
        "p99_ms": _quantile(latencies, 0.99) * 1e3,
        "seconds": elapsed,
    }


def run() -> dict:
    tokens = [f"token-{i:04d}" for i in range(N_TENANTS)]
    token_map = {token: f"tenant-{i:04d}" for i, token in enumerate(tokens)}

    with tempfile.TemporaryDirectory(prefix="bench-serving-") as tmp:
        root = Path(tmp)
        store = _registry_store(root / "data")

        identical = streamed_identity(store)
        print(f"streamed identity: {identical}/{len(WORKLOAD)} workload "
              f"queries bit-identical to ExplanationService.explain")
        store.close()

        single = {}
        double = {}
        for replicas, results in ((1, single), (2, double)):
            fleet = ReplicaFleet(root / "data", root / f"tier-{replicas}",
                                 replicas=replicas, tokens=token_map,
                                 fedex_config={"seed": 0})
            with fleet:
                results.update(run_load(fleet.urls, tokens))

    speedup = double["rps"] / max(single["rps"], 1e-9)
    total = N_CLIENTS * REQUESTS_PER_CLIENT
    print(f"\nload: {total} requests, {N_CLIENTS} client processes, "
          f"{N_TENANTS} tenants (python {sys.version.split()[0]})")
    print(f"{'replicas':>9s} {'rps':>8s} {'p50 ms':>8s} {'p99 ms':>8s}")
    for replicas, results in ((1, single), (2, double)):
        print(f"{replicas:9d} {results['rps']:8.1f} "
              f"{results['p50_ms']:8.2f} {results['p99_ms']:8.2f}")
    print(f"two-replica speedup: {speedup:.2f}x")

    return {
        "identical_queries": identical,
        "rps_single": single["rps"], "rps_double": double["rps"],
        "p50_ms_single": single["p50_ms"], "p99_ms_single": single["p99_ms"],
        "p50_ms_double": double["p50_ms"], "p99_ms_double": double["p99_ms"],
        "replica_speedup": speedup,
        "waiver": _replica_bar_waiver(),
    }


def main() -> int:
    results = run()
    status = 0
    if results["identical_queries"] < len(WORKLOAD):
        print(f"WARNING: only {results['identical_queries']} of "
              f"{len(WORKLOAD)} streamed reports were bit-identical")
        status = 1
    if results["waiver"] is not None:
        print(f"WAIVED: two-replica RPS bar not enforced — {results['waiver']}")
    elif results["replica_speedup"] < REPLICA_SPEEDUP_BAR:
        print(f"WARNING: two-replica speedup {results['replica_speedup']:.2f}x "
              f"is below the {REPLICA_SPEEDUP_BAR:.1f}x acceptance bar")
        status = 1
    perf_record.record("serving", {**results, "clients": N_CLIENTS,
                                   "tenants": N_TENANTS, "status": status})
    return status


if __name__ == "__main__":
    raise SystemExit(main())
