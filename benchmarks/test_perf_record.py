"""Tests of the persisted benchmark trajectory (:mod:`perf_record`).

The BENCH_*.json files are committed artifacts every ``bench_*.py`` appends
to; this suite pins the envelope (area/schema/runs), the host stamping, the
append-don't-clobber semantics, the corruption and foreign-file recovery,
the retention cap, and the two environment knobs (``REPRO_BENCH_DIR``,
``REPRO_BENCH_RECORD``).
"""

from __future__ import annotations

import json
import os

import perf_record


class TestRecord:
    def test_appends_runs_with_envelope(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        first = perf_record.record("backends", {"speedup": 2.0})
        assert first == tmp_path / "BENCH_backends.json"
        perf_record.record("backends", {"speedup": 3.0})
        document = json.loads(first.read_text())
        assert document["area"] == "backends"
        assert document["schema"] == perf_record.SCHEMA_VERSION
        assert [run["speedup"] for run in document["runs"]] == [2.0, 3.0]

    def test_runs_are_stamped_with_host_context(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        perf_record.record("x", {"v": 1}, path=path)
        run = json.loads(path.read_text())["runs"][0]
        assert run["v"] == 1
        assert "recorded_at" in run
        assert run["host"]["cpu_count"] == os.cpu_count()
        assert run["host"]["python"]

    def test_corrupt_file_starts_over(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{definitely not json")
        perf_record.record("x", {"v": 1}, path=path)
        document = json.loads(path.read_text())
        assert document["area"] == "x"
        assert [run["v"] for run in document["runs"]] == [1]

    def test_foreign_document_not_extended(self, tmp_path):
        """A file claiming another area (or no runs list) is replaced, not mixed."""
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"area": "other", "schema": 1,
                                    "runs": [{"v": 0}]}))
        perf_record.record("x", {"v": 1}, path=path)
        document = json.loads(path.read_text())
        assert document["area"] == "x"
        assert len(document["runs"]) == 1
        assert document["runs"][0]["v"] == 1

    def test_retention_cap_keeps_newest(self, tmp_path, monkeypatch):
        monkeypatch.setattr(perf_record, "MAX_RUNS", 3)
        path = tmp_path / "BENCH_x.json"
        for index in range(5):
            perf_record.record("x", {"i": index}, path=path)
        document = json.loads(path.read_text())
        assert [run["i"] for run in document["runs"]] == [2, 3, 4]

    def test_recording_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_RECORD", "0")
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        assert not perf_record.recording_enabled()
        assert perf_record.record("x", {"v": 1}) is None
        assert not (tmp_path / "BENCH_x.json").exists()

    def test_bench_dir_defaults_to_repo_root(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        root = perf_record.bench_dir()
        assert (root / "benchmarks").is_dir()

    def test_latest_run(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        assert perf_record.latest_run("x", path=path) is None
        perf_record.record("x", {"v": 1}, path=path)
        perf_record.record("x", {"v": 2}, path=path)
        assert perf_record.latest_run("x", path=path)["v"] == 2
