"""Figure 9: runtime vs number of columns — fedex-Sampling, SeeDB, Rath.

Paper result (shape): fedex-Sampling's runtime grows moderately with the
schema width and beats SeeDB on the wide Products & Sales view, while SeeDB
can be slightly faster on the mostly-numeric Spotify dataset; Rath is the
slowest / fails on the largest dataset.  Absolute seconds are hardware- and
substrate-dependent and are not asserted.
"""

from __future__ import annotations

from conftest import bench_scale, run_once

from repro.experiments import average_by, column_scaling_sweep, print_table

_DATASET_QUERIES = {"bank": (11, 13), "spotify": (6, 7), "products": (4, 5)}
_COLUMN_COUNTS = {
    "small": (4, 8, 16),
    "medium": (4, 8, 16, 20, 33),
    "full": (4, 8, 16, 20, 33),
}


def _sweep_all(registry, column_counts):
    rows = []
    for dataset, queries in _DATASET_QUERIES.items():
        rows.extend(column_scaling_sweep(
            registry, dataset, query_numbers=queries, column_counts=column_counts,
            repetitions=1, timeout_seconds=300.0,
        ))
    return rows


def test_figure9_runtime_vs_columns(benchmark, bench_registry):
    column_counts = _COLUMN_COUNTS.get(bench_scale(), _COLUMN_COUNTS["small"])
    rows = run_once(benchmark, _sweep_all, bench_registry, column_counts)
    averaged = average_by(rows, ["dataset", "columns", "system"])
    print_table(averaged, title="Figure 9 — runtime (s) vs number of columns, per dataset and system")

    fedex_rows = [row for row in averaged if row["system"] == "FEDEX-Sampling"
                  and row["seconds"] is not None]
    assert fedex_rows, "fedex-Sampling must produce timings"
    # fedex-Sampling stays interactive on the reduced benchmark sizes.
    assert all(row["seconds"] < 120.0 for row in fedex_rows)
    # Runtime should not shrink as columns are added (monotone-ish growth).
    for dataset in _DATASET_QUERIES:
        per_dataset = sorted((row for row in fedex_rows if row["dataset"] == dataset),
                             key=lambda row: row["columns"])
        if len(per_dataset) >= 2:
            assert per_dataset[-1]["seconds"] >= per_dataset[0]["seconds"] * 0.5
