"""The perf gate judged against synthetic BENCH_*.json trajectories."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from perf_gate import (
    DEFAULT_THRESHOLD,
    Verdict,
    gate_area,
    host_key,
    main,
    ratio_fields,
)

HOST = {
    "python": "3.11.7",
    "implementation": "CPython",
    "platform": "Linux-test",
    "machine": "x86_64",
    "cpu_count": 4,
    "gil_disabled": False,
}


def write_area(directory: Path, area: str, payloads) -> Path:
    """A BENCH_<area>.json of runs with the shared HOST stamped on."""
    runs = [{"recorded_at": f"2026-01-{i + 1:02d}T00:00:00+00:00",
             "host": dict(payload.pop("host", HOST)), **payload}
            for i, payload in enumerate(payloads)]
    path = directory / f"BENCH_{area}.json"
    path.write_text(json.dumps({"area": area, "schema": 1, "runs": runs}))
    return path


def statuses(verdicts):
    return {(v.field, v.status) for v in verdicts}


class TestRatioFields:
    def test_walks_nested_dicts_and_step_labelled_lists(self):
        payload = {
            "serial": [
                {"step": "filter", "speedup": 4.0, "exact_s": 1.0},
                {"step": "join", "speedup": 2.0},
            ],
            "pool": {"speedup": 1.5, "workers": 4},
            "throughput": 3.0,
            "warm": 0.5,  # absolute latency: not a ratio field
        }
        fields = dict(ratio_fields(payload))
        assert fields == {
            "serial.filter.speedup": 4.0,
            "serial.join.speedup": 2.0,
            "pool.speedup": 1.5,
            "throughput": 3.0,
        }

    def test_waivered_subtree_is_invisible(self):
        payload = {
            "pool": {"speedup": 0.1, "waiver": "single-core host"},
            "warm_speedup": 9.0,
        }
        assert dict(ratio_fields(payload)) == {"warm_speedup": 9.0}

    def test_booleans_and_strings_are_not_ratios(self):
        payload = {"speedup": True, "throughput": "fast", "warm_speedup": 2.0}
        assert dict(ratio_fields(payload)) == {"warm_speedup": 2.0}


class TestHostKey:
    def test_patch_releases_share_a_bucket(self):
        a = {"host": dict(HOST, python="3.11.2")}
        b = {"host": dict(HOST, python="3.11.9")}
        assert host_key(a) == host_key(b)

    def test_minor_version_and_gil_flavour_split_buckets(self):
        base = {"host": dict(HOST)}
        assert host_key({"host": dict(HOST, python="3.12.1")}) != host_key(base)
        assert host_key({"host": dict(HOST, gil_disabled=True)}) != host_key(base)


class TestGateArea:
    def test_regression_past_threshold_fails(self, tmp_path):
        runs = [{"warm_speedup": 10.0} for _ in range(4)]
        runs.append({"warm_speedup": 10.0 * DEFAULT_THRESHOLD * 0.9})
        write_area(tmp_path, "session", runs)
        verdicts = gate_area("session", directory=tmp_path)
        assert statuses(verdicts) == {("warm_speedup", "regressed")}

    def test_within_threshold_passes(self, tmp_path):
        runs = [{"warm_speedup": 10.0} for _ in range(4)]
        runs.append({"warm_speedup": 10.0 * DEFAULT_THRESHOLD * 1.05})
        write_area(tmp_path, "session", runs)
        verdicts = gate_area("session", directory=tmp_path)
        assert statuses(verdicts) == {("warm_speedup", "ok")}

    def test_baseline_is_the_median_not_the_mean(self, tmp_path):
        # One historic outlier at 100 must not drag the baseline up: the
        # median of [10, 10, 10, 100] is 10, so a latest of 9 passes.
        runs = [{"warm_speedup": s} for s in (10.0, 10.0, 10.0, 100.0, 9.0)]
        write_area(tmp_path, "session", runs)
        (verdict,) = gate_area("session", directory=tmp_path)
        assert verdict.status == "ok"
        assert verdict.baseline == pytest.approx(10.0)

    def test_thin_history_skips(self, tmp_path):
        write_area(tmp_path, "session", [{"warm_speedup": 10.0},
                                         {"warm_speedup": 1.0}])
        (verdict,) = gate_area("session", directory=tmp_path)
        assert verdict.status == "skipped"

    def test_foreign_host_runs_leave_the_baseline(self, tmp_path):
        # Plenty of history, but all of it from another python: the latest
        # run has no comparable past and must be skipped, not failed.
        other = dict(HOST, python="3.12.1")
        runs = [{"warm_speedup": 50.0, "host": dict(other)} for _ in range(5)]
        runs.append({"warm_speedup": 5.0})
        write_area(tmp_path, "session", runs)
        (verdict,) = gate_area("session", directory=tmp_path)
        assert verdict.status == "skipped"

    def test_waivered_latest_run_is_not_judged(self, tmp_path):
        runs = [{"pool": {"speedup": 4.0}} for _ in range(4)]
        runs.append({"pool": {"speedup": 0.1, "waiver": "single-core host"}})
        write_area(tmp_path, "backends", runs)
        (verdict,) = gate_area("backends", directory=tmp_path)
        assert verdict.status == "skipped"
        assert "no ratio fields" in verdict.detail

    def test_waivered_history_runs_leave_the_baseline(self, tmp_path):
        # Three waivered historic runs + two clean ones: only the clean
        # pair counts, which is below min_runs, so the field skips.
        runs = [{"pool": {"speedup": 0.1, "waiver": "impaired"}}
                for _ in range(3)]
        runs += [{"pool": {"speedup": 4.0}} for _ in range(3)]
        write_area(tmp_path, "backends", runs)
        (verdict,) = gate_area("backends", directory=tmp_path)
        assert verdict.status == "skipped"

    def test_empty_trajectory_skips(self, tmp_path):
        verdicts = gate_area("backends", directory=tmp_path)
        assert statuses(verdicts) == {("*", "skipped")}

    def test_step_rename_is_fresh_history(self, tmp_path):
        # A renamed list step changes the dotted path; its history restarts
        # instead of being judged against the old step's numbers.
        runs = [{"serial": [{"step": "old", "speedup": 8.0}]} for _ in range(4)]
        runs.append({"serial": [{"step": "new", "speedup": 1.0}]})
        write_area(tmp_path, "backends", runs)
        (verdict,) = gate_area("backends", directory=tmp_path)
        assert verdict.field == "serial.new.speedup"
        assert verdict.status == "skipped"


class TestMain:
    def test_exit_one_on_regression(self, tmp_path, capsys):
        runs = [{"warm_speedup": 10.0} for _ in range(4)] + [{"warm_speedup": 1.0}]
        write_area(tmp_path, "session", runs)
        code = main(["--dir", str(tmp_path), "--areas", "session"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out and "warm_speedup" in out

    def test_exit_zero_on_clean_run(self, tmp_path, capsys):
        runs = [{"warm_speedup": 10.0} for _ in range(5)]
        write_area(tmp_path, "session", runs)
        code = main(["--dir", str(tmp_path), "--areas", "session"])
        assert code == 0
        assert "perf gate passed" in capsys.readouterr().out

    def test_custom_threshold(self, tmp_path):
        runs = [{"warm_speedup": 10.0} for _ in range(4)] + [{"warm_speedup": 8.5}]
        write_area(tmp_path, "session", runs)
        assert main(["--dir", str(tmp_path), "--areas", "session"]) == 0
        assert main(["--dir", str(tmp_path), "--areas", "session",
                     "--threshold", "0.9"]) == 1

    def test_missing_area_file_passes(self, tmp_path, capsys):
        code = main(["--dir", str(tmp_path)])
        assert code == 0
        assert "no recorded runs" in capsys.readouterr().out


def test_verdict_render_shapes():
    ok = Verdict("a", "f", "ok", latest=2.0, baseline=2.0)
    fail = Verdict("a", "f", "regressed", latest=1.0, baseline=2.0)
    skip = Verdict("a", "f", "skipped", detail="thin history")
    assert "ratio=1.00" in ok.render()
    assert fail.render().startswith("FAIL")
    assert "thin history" in skip.render()
