"""The perf gate judged against synthetic BENCH_*.json trajectories."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from perf_gate import (
    DEFAULT_THRESHOLD,
    Verdict,
    decayed_median,
    gate_area,
    host_key,
    main,
    ratio_fields,
    update_waiver,
)

HOST = {
    "python": "3.11.7",
    "implementation": "CPython",
    "platform": "Linux-test",
    "machine": "x86_64",
    "cpu_count": 4,
    "gil_disabled": False,
}


def write_area(directory: Path, area: str, payloads) -> Path:
    """A BENCH_<area>.json of runs with the shared HOST stamped on."""
    runs = [{"recorded_at": f"2026-01-{i + 1:02d}T00:00:00+00:00",
             "host": dict(payload.pop("host", HOST)), **payload}
            for i, payload in enumerate(payloads)]
    path = directory / f"BENCH_{area}.json"
    path.write_text(json.dumps({"area": area, "schema": 1, "runs": runs}))
    return path


def statuses(verdicts):
    return {(v.field, v.status) for v in verdicts}


class TestRatioFields:
    def test_walks_nested_dicts_and_step_labelled_lists(self):
        payload = {
            "serial": [
                {"step": "filter", "speedup": 4.0, "exact_s": 1.0},
                {"step": "join", "speedup": 2.0},
            ],
            "pool": {"speedup": 1.5, "workers": 4},
            "throughput": 3.0,
            "warm": 0.5,  # absolute latency: not a ratio field
        }
        fields = dict(ratio_fields(payload))
        assert fields == {
            "serial.filter.speedup": 4.0,
            "serial.join.speedup": 2.0,
            "pool.speedup": 1.5,
            "throughput": 3.0,
        }

    def test_waivered_subtree_is_invisible(self):
        payload = {
            "pool": {"speedup": 0.1, "waiver": "single-core host"},
            "warm_speedup": 9.0,
        }
        assert dict(ratio_fields(payload)) == {"warm_speedup": 9.0}

    def test_booleans_and_strings_are_not_ratios(self):
        payload = {"speedup": True, "throughput": "fast", "warm_speedup": 2.0}
        assert dict(ratio_fields(payload)) == {"warm_speedup": 2.0}


class TestHostKey:
    def test_patch_releases_share_a_bucket(self):
        a = {"host": dict(HOST, python="3.11.2")}
        b = {"host": dict(HOST, python="3.11.9")}
        assert host_key(a) == host_key(b)

    def test_minor_version_and_gil_flavour_split_buckets(self):
        base = {"host": dict(HOST)}
        assert host_key({"host": dict(HOST, python="3.12.1")}) != host_key(base)
        assert host_key({"host": dict(HOST, gil_disabled=True)}) != host_key(base)


class TestGateArea:
    def test_regression_past_threshold_fails(self, tmp_path):
        runs = [{"warm_speedup": 10.0} for _ in range(4)]
        runs.append({"warm_speedup": 10.0 * DEFAULT_THRESHOLD * 0.9})
        write_area(tmp_path, "session", runs)
        verdicts = gate_area("session", directory=tmp_path)
        assert statuses(verdicts) == {("warm_speedup", "regressed")}

    def test_within_threshold_passes(self, tmp_path):
        runs = [{"warm_speedup": 10.0} for _ in range(4)]
        runs.append({"warm_speedup": 10.0 * DEFAULT_THRESHOLD * 1.05})
        write_area(tmp_path, "session", runs)
        verdicts = gate_area("session", directory=tmp_path)
        assert statuses(verdicts) == {("warm_speedup", "ok")}

    def test_baseline_is_the_median_not_the_mean(self, tmp_path):
        # One historic outlier at 100 must not drag the baseline up: the
        # median of [10, 10, 10, 100] is 10, so a latest of 9 passes.
        runs = [{"warm_speedup": s} for s in (10.0, 10.0, 10.0, 100.0, 9.0)]
        write_area(tmp_path, "session", runs)
        (verdict,) = gate_area("session", directory=tmp_path)
        assert verdict.status == "ok"
        assert verdict.baseline == pytest.approx(10.0)

    def test_thin_history_skips(self, tmp_path):
        write_area(tmp_path, "session", [{"warm_speedup": 10.0},
                                         {"warm_speedup": 1.0}])
        (verdict,) = gate_area("session", directory=tmp_path)
        assert verdict.status == "skipped"

    def test_foreign_host_runs_leave_the_baseline(self, tmp_path):
        # Plenty of history, but all of it from another python: the latest
        # run has no comparable past and must be skipped, not failed.
        other = dict(HOST, python="3.12.1")
        runs = [{"warm_speedup": 50.0, "host": dict(other)} for _ in range(5)]
        runs.append({"warm_speedup": 5.0})
        write_area(tmp_path, "session", runs)
        (verdict,) = gate_area("session", directory=tmp_path)
        assert verdict.status == "skipped"

    def test_waivered_latest_run_is_not_judged(self, tmp_path):
        runs = [{"pool": {"speedup": 4.0}} for _ in range(4)]
        runs.append({"pool": {"speedup": 0.1, "waiver": "single-core host"}})
        write_area(tmp_path, "backends", runs)
        (verdict,) = gate_area("backends", directory=tmp_path)
        assert verdict.status == "skipped"
        assert "no ratio fields" in verdict.detail

    def test_waivered_history_runs_leave_the_baseline(self, tmp_path):
        # Three waivered historic runs + two clean ones: only the clean
        # pair counts, which is below min_runs, so the field skips.
        runs = [{"pool": {"speedup": 0.1, "waiver": "impaired"}}
                for _ in range(3)]
        runs += [{"pool": {"speedup": 4.0}} for _ in range(3)]
        write_area(tmp_path, "backends", runs)
        (verdict,) = gate_area("backends", directory=tmp_path)
        assert verdict.status == "skipped"

    def test_empty_trajectory_skips(self, tmp_path):
        verdicts = gate_area("backends", directory=tmp_path)
        assert statuses(verdicts) == {("*", "skipped")}

    def test_step_rename_is_fresh_history(self, tmp_path):
        # A renamed list step changes the dotted path; its history restarts
        # instead of being judged against the old step's numbers.
        runs = [{"serial": [{"step": "old", "speedup": 8.0}]} for _ in range(4)]
        runs.append({"serial": [{"step": "new", "speedup": 1.0}]})
        write_area(tmp_path, "backends", runs)
        (verdict,) = gate_area("backends", directory=tmp_path)
        assert verdict.field == "serial.new.speedup"
        assert verdict.status == "skipped"


class TestMain:
    def test_exit_one_on_regression(self, tmp_path, capsys):
        runs = [{"warm_speedup": 10.0} for _ in range(4)] + [{"warm_speedup": 1.0}]
        write_area(tmp_path, "session", runs)
        code = main(["--dir", str(tmp_path), "--areas", "session"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out and "warm_speedup" in out

    def test_exit_zero_on_clean_run(self, tmp_path, capsys):
        runs = [{"warm_speedup": 10.0} for _ in range(5)]
        write_area(tmp_path, "session", runs)
        code = main(["--dir", str(tmp_path), "--areas", "session"])
        assert code == 0
        assert "perf gate passed" in capsys.readouterr().out

    def test_custom_threshold(self, tmp_path):
        runs = [{"warm_speedup": 10.0} for _ in range(4)] + [{"warm_speedup": 8.5}]
        write_area(tmp_path, "session", runs)
        assert main(["--dir", str(tmp_path), "--areas", "session"]) == 0
        assert main(["--dir", str(tmp_path), "--areas", "session",
                     "--threshold", "0.9"]) == 1

    def test_missing_area_file_passes(self, tmp_path, capsys):
        code = main(["--dir", str(tmp_path)])
        assert code == 0
        assert "no recorded runs" in capsys.readouterr().out


class TestDecayedMedian:
    def test_outlier_resistant_like_the_plain_median(self):
        assert decayed_median([10.0, 10.0, 10.0, 100.0]) == 10.0

    def test_recency_moves_the_baseline(self):
        # Five old slow runs, three recent fast ones: the plain median
        # would stay at 2.0 forever; the decayed median follows the code.
        samples = [2.0] * 5 + [8.0] * 3
        assert decayed_median(samples, decay=0.5) == 8.0
        # The mirror-image history keeps the old bar while it dominates.
        assert decayed_median(list(reversed(samples)), decay=0.5) == 2.0

    def test_always_an_observed_value(self):
        samples = [3.0, 7.0]
        assert decayed_median(samples, decay=0.9) in samples

    def test_empty_raises(self):
        import statistics

        with pytest.raises(statistics.StatisticsError):
            decayed_median([])

    def test_decay_flag_reaches_the_gate(self, tmp_path):
        # With heavy decay the baseline is ~the most recent history run
        # (12.0), which the latest 9.0 fails; the near-flat decay keeps the
        # older 10.0s in charge and passes.
        runs = [{"warm_speedup": s} for s in (10.0, 10.0, 10.0, 12.0, 9.0)]
        write_area(tmp_path, "session", runs)
        assert main(["--dir", str(tmp_path), "--areas", "session",
                     "--decay", "0.999"]) == 0
        assert main(["--dir", str(tmp_path), "--areas", "session",
                     "--decay", "0.01"]) == 1


class TestUpdateWaiver:
    def test_waives_a_subtree_of_the_latest_run(self, tmp_path):
        runs = [{"pool": {"speedup": 4.0}} for _ in range(4)]
        runs.append({"pool": {"speedup": 0.1}})
        path = write_area(tmp_path, "backends", runs)
        (before,) = gate_area("backends", directory=tmp_path)
        assert before.status == "regressed"
        update_waiver("backends", "pool", "single-core host", directory=tmp_path)
        (after,) = gate_area("backends", directory=tmp_path)
        assert after.status == "skipped"
        document = json.loads(path.read_text())
        assert document["runs"][-1]["pool"]["waiver"] == "single-core host"
        # Earlier runs are untouched: the waiver is for this host's latest
        # measurement, not a retroactive rewrite of history.
        assert "waiver" not in document["runs"][0]["pool"]

    def test_addresses_list_elements_by_step_label(self, tmp_path):
        runs = [{"serial": [{"step": "filter", "speedup": 4.0},
                            {"step": "join", "speedup": 2.0}]}]
        path = write_area(tmp_path, "backends", runs)
        update_waiver("backends", "serial.join", "flaky join timing",
                      directory=tmp_path)
        document = json.loads(path.read_text())
        assert document["runs"][-1]["serial"][1]["waiver"] == "flaky join timing"
        assert "waiver" not in document["runs"][-1]["serial"][0]

    def test_unknown_field_and_leaf_targets_are_rejected(self, tmp_path):
        write_area(tmp_path, "backends", [{"pool": {"speedup": 4.0}}])
        with pytest.raises(ValueError):
            update_waiver("backends", "nope", "x", directory=tmp_path)
        with pytest.raises(ValueError):
            update_waiver("backends", "pool.speedup", "x", directory=tmp_path)

    def test_main_entrypoint(self, tmp_path, capsys):
        runs = [{"pool": {"speedup": 4.0}} for _ in range(4)]
        runs.append({"pool": {"speedup": 0.1}})
        write_area(tmp_path, "backends", runs)
        assert main(["--dir", str(tmp_path), "--update-waiver", "backends",
                     "--field", "pool", "--reason", "single-core host"]) == 0
        assert "waived backends:pool" in capsys.readouterr().out
        assert main(["--dir", str(tmp_path), "--areas", "backends"]) == 0

    def test_main_rejects_bad_field(self, tmp_path, capsys):
        write_area(tmp_path, "backends", [{"pool": {"speedup": 4.0}}])
        assert main(["--dir", str(tmp_path), "--update-waiver", "backends",
                     "--field", "nope", "--reason", "x"]) == 1
        assert "waiver not applied" in capsys.readouterr().out


def test_verdict_render_shapes():
    ok = Verdict("a", "f", "ok", latest=2.0, baseline=2.0)
    fail = Verdict("a", "f", "regressed", latest=1.0, baseline=2.0)
    skip = Verdict("a", "f", "skipped", detail="thin history")
    assert "ratio=1.00" in ok.render()
    assert fail.render().startswith("FAIL")
    assert "thin history" in skip.render()
