"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation and
prints the corresponding rows/series.  Dataset sizes default to reduced
versions so the whole harness finishes in minutes on a laptop; the
``REPRO_BENCH_SCALE`` environment variable scales them up (e.g. ``=full`` for
the paper-scale sizes — expect long runtimes).
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import DatasetRegistry

#: Benchmark dataset sizes per scale setting.
_SCALES = {
    "small": dict(spotify_rows=8_000, bank_rows=5_000, sales_rows=20_000, products_rows=1_500),
    "medium": dict(spotify_rows=40_000, bank_rows=10_127, sales_rows=120_000, products_rows=9_977),
    "full": dict(spotify_rows=174_389, bank_rows=10_127, sales_rows=3_049_913, products_rows=9_977),
}


def bench_scale() -> str:
    """The benchmark scale selected via the REPRO_BENCH_SCALE environment variable."""
    return os.environ.get("REPRO_BENCH_SCALE", "small").lower()


def scale_sizes() -> dict:
    """Dataset sizes for the selected scale."""
    return _SCALES.get(bench_scale(), _SCALES["small"])


@pytest.fixture(scope="session")
def bench_registry() -> DatasetRegistry:
    """The dataset registry shared by all benchmarks."""
    return DatasetRegistry(seed=0, **scale_sizes())


@pytest.fixture(scope="session")
def registry_factory():
    """Factory building registries whose sales table has a requested row count."""

    def build(row_count: int) -> DatasetRegistry:
        sizes = dict(scale_sizes())
        sizes["sales_rows"] = row_count
        sizes["spotify_rows"] = min(sizes["spotify_rows"], max(row_count, 1_000))
        return DatasetRegistry(seed=0, **sizes)

    return build


def run_once(benchmark, func, *args, **kwargs):
    """Run a harness exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
