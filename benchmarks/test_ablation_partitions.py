"""Ablation: contribution quality per partition method.

DESIGN.md calls out the three partition families (frequency, numeric binning,
many-to-one) as a design choice; this ablation runs FEDEX with each family
alone and reports the best standardized contribution it finds, showing that
no single family dominates across queries (which is why FEDEX uses them all).
"""

from __future__ import annotations

from conftest import run_once

from repro.core import FedexConfig, FedexExplainer
from repro.experiments import print_table
from repro.workloads import get_query

_QUERIES = (6, 7, 13, 21, 24, 28)
_METHODS = ("frequency", "binning", "many_to_one")


def _run_ablation(registry):
    rows = []
    for number in _QUERIES:
        step = get_query(number).build_step(registry)
        for method in _METHODS:
            report = FedexExplainer(FedexConfig(
                sample_size=5_000, seed=0, partition_methods=(method,),
            )).explain(step)
            best = max((c.standardized_contribution for c in report.all_candidates), default=0.0)
            rows.append({
                "query": number,
                "method": method,
                "candidates": len(report.all_candidates),
                "best_standardized_contribution": best,
                "explanations": len(report.explanations),
            })
    return rows


def test_ablation_partition_methods(benchmark, bench_registry):
    rows = run_once(benchmark, _run_ablation, bench_registry)
    print_table(rows, title="Ablation — partition families in isolation")

    # Every family must be able to produce candidates on at least one query,
    # and at least two different families must win (produce the best
    # standardized contribution) somewhere — no single family dominates.
    wins = {}
    for number in _QUERIES:
        per_query = [row for row in rows if row["query"] == number and row["candidates"] > 0]
        if not per_query:
            continue
        winner = max(per_query, key=lambda row: row["best_standardized_contribution"])
        wins[winner["method"]] = wins.get(winner["method"], 0) + 1
    print_table([{"method": m, "wins": w} for m, w in wins.items()],
                title="Ablation — winning partition family per query")
    assert sum(wins.values()) >= len(_QUERIES) - 1
    assert len(wins) >= 2
