"""Service-layer benchmark: concurrent tenants on one shared store.

Runs the 30-query evaluation workload through the multi-tenant
:class:`~repro.service.ExplanationService` and prints the timings::

    PYTHONPATH=src python benchmarks/bench_service.py

Three phases, mirroring the acceptance bars:

* **throughput** — 4 tenants replay the workload concurrently against one
  shared store (4 service workers) versus 4 isolated sessions replaying it
  serially.  The shared store coalesces in-flight duplicates and serves
  later tenants from the report memo, so the service must be at least
  **2x** faster end-to-end (in practice ~4x: one cold pass plus lookups,
  against four cold passes).
* **budget stress** — the same concurrent replay under a deliberately tiny
  store budget; the store's measured usage must never exceed the budget,
  and every report must still match the reference bit-for-bit.
* **warm path** — a tenant re-replays the workload against the warmed
  store; the PR 2 bar (warm ≥ 5x faster than cold) must still hold with
  the store behind locks and tenancy accounting.

Bit-identity is checked against fresh single-session explains of all 30
queries (skyline keys and raw/standardized contributions, zero tolerance).
"""

from __future__ import annotations

import sys
import threading
import time

import perf_record

from repro.core import FedexConfig
from repro.datasets import DatasetRegistry
from repro.service import ExplanationService, ServiceConfig
from repro.session import ExplanationSession
from repro.workloads import WORKLOAD

#: Dataset sizes mirroring the benchmark harness's "small" scale.
_SIZES = dict(spotify_rows=8_000, bank_rows=5_000, sales_rows=20_000, products_rows=1_500)

N_TENANTS = 4
THROUGHPUT_BAR = 2.0
WARM_SPEEDUP_BAR = 5.0
STRESS_BUDGET_BYTES = 16 * 1024 * 1024


def _build_steps():
    registry = DatasetRegistry(seed=0, **_SIZES)
    return [query.build_step(registry) for query in WORKLOAD]


def _reference_reports(steps):
    session = ExplanationSession(config=FedexConfig(seed=0))
    return [session.explain(step) for step in steps]


def _assert_identical(report, reference, label):
    assert report.skyline_keys() == reference.skyline_keys(), f"{label}: skyline differs"
    mine = {c.key(): (c.contribution, c.standardized_contribution)
            for c in report.all_candidates}
    theirs = {c.key(): (c.contribution, c.standardized_contribution)
              for c in reference.all_candidates}
    assert mine.keys() == theirs.keys(), f"{label}: candidate pools differ"
    for key, values in mine.items():
        assert values == theirs[key], f"{label}: contribution differs at {key}"


def _run_tenants(service, steps, reference, budget=None):
    """Replay the workload from N_TENANTS concurrent clients; returns seconds."""
    failures = []
    max_usage = [0]

    def client(tenant):
        try:
            for step, expected in zip(steps, reference):
                report = service.explain(tenant, step)
                _assert_identical(report, expected, tenant)
                usage = service.store.usage_bytes
                if usage > max_usage[0]:
                    max_usage[0] = usage
        except Exception as exc:  # pragma: no cover - failure path
            failures.append((tenant, exc))

    threads = [threading.Thread(target=client, args=(f"tenant-{i}",))
               for i in range(N_TENANTS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if failures:
        raise AssertionError(f"tenant failures: {failures}")
    if budget is not None and max_usage[0] > budget:
        raise AssertionError(
            f"store usage {max_usage[0]} exceeded the budget {budget}"
        )
    return elapsed


def run() -> dict:
    steps = _build_steps()

    # Reference: one fresh session, every query cold — also the bit-identity
    # baseline every service report is compared against.
    start = time.perf_counter()
    reference = _reference_reports(steps)
    single_cold = time.perf_counter() - start

    # Baseline: four isolated sessions, replayed serially (no sharing).
    start = time.perf_counter()
    for _ in range(N_TENANTS):
        isolated = ExplanationSession(config=FedexConfig(seed=0))
        for step in steps:
            isolated.explain(step)
    serial = time.perf_counter() - start

    # Service: four concurrent tenants, one shared store, four workers.
    service = ExplanationService(
        config=FedexConfig(seed=0), service_config=ServiceConfig(workers=N_TENANTS)
    )
    concurrent = _run_tenants(service, steps, reference)
    throughput = serial / max(concurrent, 1e-9)

    # Warm path: a fifth tenant replays the workload against the warm store.
    start = time.perf_counter()
    for step, expected in zip(steps, reference):
        _assert_identical(service.explain("warm-tenant", step), expected, "warm")
    warm = time.perf_counter() - start
    warm_speedup = single_cold / max(warm, 1e-9)
    coalesced = service.store.metrics.coalesced_requests
    hit_rate = service.store.metrics.hit_rate()
    service.close()

    # Budget stress: tiny budget, constant eviction, results still identical
    # and usage never above the line.
    stressed = ExplanationService(
        config=FedexConfig(seed=0),
        service_config=ServiceConfig(workers=N_TENANTS,
                                     cache_budget_bytes=STRESS_BUDGET_BYTES,
                                     tenant_quota_bytes=STRESS_BUDGET_BYTES // 2),
    )
    stress_seconds = _run_tenants(stressed, steps, reference,
                                  budget=STRESS_BUDGET_BYTES)
    stress_evictions = stressed.store.metrics.evictions
    stressed.close()

    print(f"30-query workload x {N_TENANTS} tenants, "
          f"{_SIZES['spotify_rows']:,}-row spotify scale "
          f"(seconds, python {sys.version.split()[0]})")
    print(f"{'mode':28s} {'seconds':>9s}")
    print(f"{'single session, cold':28s} {single_cold:9.3f}")
    print(f"{'4 isolated serial sessions':28s} {serial:9.3f}")
    print(f"{'service, 4 tenants shared':28s} {concurrent:9.3f}  "
          f"({throughput:.1f}x vs isolated)")
    print(f"{'warm tenant replay':28s} {warm:9.3f}  "
          f"({warm_speedup:.1f}x vs cold)")
    print(f"{'stress (16 MiB budget)':28s} {stress_seconds:9.3f}  "
          f"({stress_evictions} evictions, usage never above budget)")
    print(f"coalesced in-flight requests: {coalesced}; store hit rate: {hit_rate:.2f}")

    return {
        "single_cold": single_cold, "serial": serial, "concurrent": concurrent,
        "throughput": throughput, "warm_speedup": warm_speedup,
    }


def main() -> int:
    results = run()
    status = 0
    if results["throughput"] < THROUGHPUT_BAR:
        print(f"WARNING: shared-store throughput {results['throughput']:.1f}x is below "
              f"the {THROUGHPUT_BAR:.0f}x acceptance bar")
        status = 1
    if results["warm_speedup"] < WARM_SPEEDUP_BAR:
        print(f"WARNING: warm-path speedup {results['warm_speedup']:.1f}x is below the "
              f"{WARM_SPEEDUP_BAR:.0f}x acceptance bar")
        status = 1
    perf_record.record("service", {**results, "workers": N_TENANTS, "status": status})
    return status


if __name__ == "__main__":
    raise SystemExit(main())
