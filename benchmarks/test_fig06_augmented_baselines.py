"""Figure 6: baselines augmented with expert captions, vs FEDEX (Bank notebook).

Paper result: even with expert-written captions added to their
visualizations, SeeDB (3.17) and Rath (3.42) remain far behind FEDEX (5.52).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import print_table, run_augmented_baselines_study


def test_figure6_augmented_baselines(benchmark, bench_registry):
    rows = run_once(benchmark, run_augmented_baselines_study, bench_registry, seed=17)
    print_table(rows, title="Figure 6 — augmented baselines vs FEDEX (Bank notebook)")

    scores = {row["system"]: row["average"] for row in rows}
    assert "FEDEX" in scores
    for system, score in scores.items():
        if system != "FEDEX":
            assert scores["FEDEX"] > score
