"""Setuptools shim.

Kept so that ``pip install -e .`` works in offline environments whose
setuptools predates PEP 660 editable installs (the project metadata lives in
``pyproject.toml``).
"""

from setuptools import setup

setup()
